// Job-service scheduler tests (ctest label: tsan): lifecycle against the
// standalone runtime, the priority-then-FIFO admission order as a seeded
// property, graceful shutdown with jobs in flight, queue-full rejection, the
// socket front-end round trip, and the cancelled-job teardown regression
// (outstanding pool bytes must return to their pre-job level).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "hadoop/runtime.h"
#include "io/buffer_pool.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "proptest.h"
#include "service/job_service.h"
#include "service/service_socket.h"
#include "testing_support.h"

namespace scishuffle::service {
namespace {

using scishuffle::testing::TempDir;

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

i64 decodeI64(const Bytes& b) {
  MemorySource src(b);
  return readI64(src);
}

const hadoop::ReduceFn kSumReduce = [](const Bytes& key, std::vector<Bytes>& values,
                                       const hadoop::EmitFn& emit) {
  i64 sum = 0;
  for (const auto& v : values) sum += decodeI64(v);
  emit(key, encodeI64(sum));
};

/// The canonical word-count workload; closures capture everything by value so
/// the spec outlives the scope that built it (the service contract).
JobSpec wordcountSpec(const std::string& name, int maps, int words,
                      const std::string& codec = "gzipish") {
  JobSpec spec;
  spec.name = name;
  spec.config.num_reducers = 3;
  spec.config.intermediate_codec = codec;
  const std::vector<std::string> vocab = {"the", "windspeed", "grid", "key",
                                          "map", "reduce",    "sci", "curve"};
  for (int m = 0; m < maps; ++m) {
    spec.map_tasks.push_back(hadoop::MapTask{[m, words, vocab](const hadoop::EmitFn& emit) {
      for (int i = 0; i < words; ++i) {
        emit(toBytes(vocab[static_cast<std::size_t>((i * 7 + m) % 8)]), encodeI64(1));
      }
    }});
  }
  spec.reduce = kSumReduce;
  return spec;
}

/// A shared barrier the plug jobs block on: holds the single runner slot
/// open while the test stacks up the admission queue.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
};

/// A job whose single map task parks on `gate` (after flagging `started`)
/// until the test releases it.
JobSpec plugSpec(Gate* gate, std::atomic<bool>* started) {
  JobSpec spec;
  spec.name = "plug";
  spec.priority = Priority::kInteractive;
  spec.config.intermediate_codec = "null";
  spec.map_tasks.push_back(hadoop::MapTask{[gate, started](const hadoop::EmitFn& emit) {
    started->store(true);
    gate->wait();
    emit(toBytes("plug"), encodeI64(1));
  }});
  spec.reduce = kSumReduce;
  return spec;
}

void awaitTrue(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::yield();
}

TEST(JobServiceTest, LifecycleMatchesStandaloneRuntime) {
  const JobSpec reference = wordcountSpec("ref", 4, 300);
  const hadoop::JobResult baseline =
      hadoop::runJob(reference.config, reference.map_tasks, reference.reduce);

  ServiceConfig config;
  config.max_concurrent_jobs = 2;
  JobService service(config);
  const SubmitResult r = service.submit(wordcountSpec("svc", 4, 300));
  ASSERT_TRUE(r.accepted);

  const hadoop::JobResult result = service.takeResult(r.id);
  EXPECT_EQ(result.outputs, baseline.outputs);

  const JobStatus status = service.wait(r.id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_GE(status.start_us, status.submit_us);
  EXPECT_GE(status.finish_us, status.start_us);
  // The result moves out exactly once.
  EXPECT_THROW(service.takeResult(r.id), std::exception);
  service.shutdown();
}

TEST(JobServiceTest, RunOneJobConvenienceMatchesRuntime) {
  const JobSpec reference = wordcountSpec("one", 3, 200);
  const hadoop::JobResult baseline =
      hadoop::runJob(reference.config, reference.map_tasks, reference.reduce);
  const hadoop::JobResult result = runOneJob(wordcountSpec("one", 3, 200));
  EXPECT_EQ(result.outputs, baseline.outputs);
}

// The admission-order property: with one runner slot held open by a plug
// job, a randomized batch of queued jobs must execute in priority class
// order, FIFO within each class. Seeded via SCISHUFFLE_PROP_SEED.
TEST(JobServiceTest, AdmissionOrderIsPriorityThenFifo) {
  const u64 seed = scishuffle::testing::propertySeed();
  const auto gen = [](std::mt19937_64& rng) {
    std::vector<int> priorities(2 + rng() % 9);
    for (auto& p : priorities) p = static_cast<int>(rng() % 3);
    return priorities;
  };
  const auto prop = [](const std::vector<int>& priorities) {
    ServiceConfig config;
    config.max_concurrent_jobs = 1;
    config.queue_capacity = priorities.size() + 1;
    JobService service(config);

    Gate gate;
    std::atomic<bool> plugStarted{false};
    const SubmitResult plug = service.submit(plugSpec(&gate, &plugStarted));
    if (!plug.accepted) return false;
    awaitTrue(plugStarted);  // the plug owns the only slot; all else queues

    std::mutex orderMu;
    std::vector<int> order;
    std::vector<u64> ids;
    for (std::size_t i = 0; i < priorities.size(); ++i) {
      JobSpec spec;
      spec.name = "job" + std::to_string(i);
      spec.priority = static_cast<Priority>(priorities[i]);
      spec.config.intermediate_codec = "null";
      const int index = static_cast<int>(i);
      spec.map_tasks.push_back(
          hadoop::MapTask{[index, &orderMu, &order](const hadoop::EmitFn& emit) {
            {
              std::lock_guard<std::mutex> lock(orderMu);
              order.push_back(index);
            }
            emit(toBytes("k"), encodeI64(1));
          }});
      spec.reduce = kSumReduce;
      const SubmitResult r = service.submit(std::move(spec));
      if (!r.accepted) return false;
      ids.push_back(r.id);
    }

    gate.release();
    for (const u64 id : ids) {
      if (service.wait(id).state != JobState::kDone) return false;
    }
    service.shutdown();

    // Expected: stable sort of submission order by priority class.
    std::vector<int> expected(priorities.size());
    std::iota(expected.begin(), expected.end(), 0);
    std::stable_sort(expected.begin(), expected.end(), [&](int a, int b) {
      return priorities[static_cast<std::size_t>(a)] < priorities[static_cast<std::size_t>(b)];
    });
    std::lock_guard<std::mutex> lock(orderMu);
    return order == expected;
  };
  scishuffle::testing::forAll("priority-then-fifo admission", seed, 10, gen, prop);
}

TEST(JobServiceTest, ConcurrencyNeverExceedsRunnerSlots) {
  ServiceConfig config;
  config.max_concurrent_jobs = 2;
  config.queue_capacity = 16;
  JobService service(config);

  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::vector<u64> ids;
  for (int i = 0; i < 8; ++i) {
    JobSpec spec;
    spec.name = "load" + std::to_string(i);
    spec.config.intermediate_codec = "null";
    spec.map_tasks.push_back(hadoop::MapTask{[&active, &peak](const hadoop::EmitFn& emit) {
      const int now = active.fetch_add(1) + 1;
      int seen = peak.load();
      while (seen < now && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      active.fetch_sub(1);
      emit(toBytes("k"), encodeI64(1));
    }});
    spec.reduce = kSumReduce;
    const SubmitResult r = service.submit(std::move(spec));
    ASSERT_TRUE(r.accepted);
    ids.push_back(r.id);
  }
  for (const u64 id : ids) EXPECT_EQ(service.wait(id).state, JobState::kDone);
  EXPECT_LE(peak.load(), 2);
  service.shutdown();
}

TEST(JobServiceTest, GracefulShutdownDrainsJobsInFlight) {
  ServiceConfig config;
  config.max_concurrent_jobs = 2;
  JobService service(config);
  std::vector<u64> ids;
  for (int i = 0; i < 6; ++i) {
    const SubmitResult r = service.submit(wordcountSpec("drain" + std::to_string(i), 2, 120));
    ASSERT_TRUE(r.accepted);
    ids.push_back(r.id);
  }
  // Shutdown with most of those jobs still queued or running: drain mode
  // must complete every one of them before returning.
  service.shutdown(JobService::Shutdown::kDrainQueued);
  for (const u64 id : ids) {
    EXPECT_EQ(service.wait(id).state, JobState::kDone) << "job " << id;
  }
  // Post-shutdown submissions are rejected, not lost.
  const SubmitResult late = service.submit(wordcountSpec("late", 1, 10));
  EXPECT_FALSE(late.accepted);
  const auto status = service.status(late.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kRejected);
}

TEST(JobServiceTest, ShutdownCancelQueuedCancelsTheQueue) {
  ServiceConfig config;
  config.max_concurrent_jobs = 1;
  JobService service(config);

  Gate gate;
  std::atomic<bool> plugStarted{false};
  const SubmitResult plug = service.submit(plugSpec(&gate, &plugStarted));
  ASSERT_TRUE(plug.accepted);
  awaitTrue(plugStarted);

  const SubmitResult queued = service.submit(wordcountSpec("queued", 2, 50));
  ASSERT_TRUE(queued.accepted);

  gate.release();
  service.shutdown(JobService::Shutdown::kCancelQueued);
  EXPECT_EQ(service.wait(plug.id).state, JobState::kDone);
  const JobStatus status = service.wait(queued.id);
  // Either the dispatcher beat the shutdown to it (done) or it was cancelled
  // in the queue; it must not be left hanging.
  EXPECT_TRUE(status.state == JobState::kCancelled || status.state == JobState::kDone);
}

TEST(JobServiceTest, QueueFullRejectsWithReason) {
  ServiceConfig config;
  config.max_concurrent_jobs = 1;
  config.queue_capacity = 2;
  JobService service(config);

  Gate gate;
  std::atomic<bool> plugStarted{false};
  const SubmitResult plug = service.submit(plugSpec(&gate, &plugStarted));
  ASSERT_TRUE(plug.accepted);
  awaitTrue(plugStarted);

  const SubmitResult a = service.submit(wordcountSpec("a", 1, 10));
  const SubmitResult b = service.submit(wordcountSpec("b", 1, 10));
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  EXPECT_EQ(service.queuedJobs(), 2u);

  const SubmitResult overflow = service.submit(wordcountSpec("overflow", 1, 10));
  EXPECT_FALSE(overflow.accepted);
  const auto status = service.status(overflow.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kRejected);
  EXPECT_NE(status->error.find("queue full"), std::string::npos) << status->error;
  EXPECT_THROW(service.takeResult(overflow.id), std::runtime_error);

  gate.release();
  service.shutdown(JobService::Shutdown::kDrainQueued);
  EXPECT_EQ(service.wait(a.id).state, JobState::kDone);
  EXPECT_EQ(service.wait(b.id).state, JobState::kDone);
}

// Satellite regression: a cancelled job must hand every pooled buffer back —
// the shared byte pool's outstanding account returns to its pre-job level
// once the job reaches a terminal state (the shuffle drains on abort).
TEST(JobServiceTest, CancelledJobReleasesPooledBuffers) {
  ServiceConfig config;
  config.max_concurrent_jobs = 1;
  JobService service(config);
  const u64 before = sharedBytePool().outstandingBytes();

  Gate gate;
  std::atomic<bool> started{false};
  JobSpec spec;
  spec.name = "cancelme";
  spec.config.intermediate_codec = "gzipish";
  spec.config.num_reducers = 2;
  // Map 0 publishes a real segment immediately; map 1 parks so the job is
  // mid-shuffle (bytes pending in the server) when the cancel lands.
  spec.map_tasks.push_back(hadoop::MapTask{[](const hadoop::EmitFn& emit) {
    for (int i = 0; i < 400; ++i) emit(toBytes("word" + std::to_string(i % 7)), encodeI64(1));
  }});
  spec.map_tasks.push_back(hadoop::MapTask{[&gate, &started](const hadoop::EmitFn& emit) {
    started.store(true);
    gate.wait();
    emit(toBytes("late"), encodeI64(1));
  }});
  spec.config.map_slots = 2;
  spec.reduce = kSumReduce;

  const SubmitResult r = service.submit(std::move(spec));
  ASSERT_TRUE(r.accepted);
  awaitTrue(started);
  EXPECT_TRUE(service.cancel(r.id));
  gate.release();

  const JobStatus status = service.wait(r.id);
  EXPECT_TRUE(status.state == JobState::kCancelled || status.state == JobState::kDone)
      << jobStateName(status.state);
  EXPECT_THROW(service.takeResult(r.id), std::exception);
  service.shutdown();
  EXPECT_EQ(sharedBytePool().outstandingBytes(), before);
}

// Governor-driven backpressure end to end: a pending-bytes limit of one byte
// forces every publish through the spill-to-disk overflow path, and the
// output must still match an unconstrained run bit for bit.
TEST(JobServiceTest, OverflowSpillPreservesOutput) {
  const JobSpec reference = wordcountSpec("ovf", 4, 400);
  const hadoop::JobResult baseline =
      hadoop::runJob(reference.config, reference.map_tasks, reference.reduce);

  TempDir dir("svc_overflow");
  ServiceConfig config;
  config.max_concurrent_jobs = 1;
  config.overflow_dir = dir.path();
  config.shuffle_pending_limit_bytes = 1;
  JobService service(config);
  const SubmitResult r = service.submit(wordcountSpec("ovf", 4, 400));
  ASSERT_TRUE(r.accepted);
  const hadoop::JobResult result = service.takeResult(r.id);
  EXPECT_EQ(result.outputs, baseline.outputs);
  EXPECT_GT(result.counters.get(hadoop::counter::kShuffleSegmentsOverflowed), 0u);
  service.shutdown();
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));  // spill files cleaned up
}

TEST(JobServiceTest, SocketFrontEndRoundTrip) {
  TempDir dir("svc_sock");
  ServiceConfig config;
  config.max_concurrent_jobs = 2;
  JobService service(config);

  const SpecBuilder builder = [](const std::vector<std::string>& args, JobSpec& spec,
                                 std::string& error) {
    if (args.size() != 2 || args[0] != "wc") {
      error = "usage: wc <maps>";
      return false;
    }
    // Fill, don't overwrite: the endpoint already parsed the priority in.
    const Priority priority = spec.priority;
    spec = wordcountSpec("wc", std::stoi(args[1]), 100);
    spec.priority = priority;
    return true;
  };
  ServiceEndpoint endpoint(service, dir.file("svc.sock"), builder);

  const std::string submitted =
      ServiceEndpoint::request(endpoint.socketPath(), "submit interactive wc 3");
  ASSERT_EQ(submitted.rfind("ok id=", 0), 0u) << submitted;
  const std::string id = submitted.substr(6);

  const std::string finalLine = ServiceEndpoint::request(endpoint.socketPath(), "wait " + id);
  EXPECT_NE(finalLine.find(" done "), std::string::npos) << finalLine;
  EXPECT_NE(finalLine.find("interactive"), std::string::npos) << finalLine;

  const std::string listing = ServiceEndpoint::request(endpoint.socketPath(), "list");
  EXPECT_NE(listing.find("wc"), std::string::npos);
  EXPECT_NE(listing.find("end"), std::string::npos);

  EXPECT_EQ(ServiceEndpoint::request(endpoint.socketPath(), "submit normal bogus"),
            "error usage: wc <maps>");
  EXPECT_NE(ServiceEndpoint::request(endpoint.socketPath(), "cancel 4242"), "ok");
  EXPECT_EQ(ServiceEndpoint::request(endpoint.socketPath(), "shutdown"), "ok");
  endpoint.waitUntilShutdownRequested();
  endpoint.stop();
  service.shutdown();
}

TEST(JobServiceTest, PriorityNamesRoundTrip) {
  EXPECT_EQ(parsePriority("interactive"), Priority::kInteractive);
  EXPECT_EQ(parsePriority("normal"), Priority::kNormal);
  EXPECT_EQ(parsePriority("batch"), Priority::kBatch);
  EXPECT_THROW(parsePriority("bogus"), std::invalid_argument);
  EXPECT_STREQ(priorityName(Priority::kBatch), "batch");
  EXPECT_STREQ(jobStateName(JobState::kCancelled), "cancelled");
}

}  // namespace
}  // namespace scishuffle::service
