// Randomized multi-tenant soak (ctest label: stress): one JobService runs a
// fleet of concurrent word-count jobs across mixed codecs, priorities and
// seeded fault plans, under a memory governor. Every job's output must be
// bit-identical to a serial no-fault baseline, the governor's observed RSS
// must stay under its budget, and each job's metrics stream lands as a JSONL
// file (CI uploads the directory as an artifact). Seeded via
// SCISHUFFLE_PROP_SEED so a failure replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "hadoop/runtime.h"
#include "io/buffer_pool.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "service/job_service.h"
#include "testing/fault_injector.h"
#include "testing_support.h"

namespace scishuffle::service {
namespace {

using scishuffle::testing::FaultKind;
using scishuffle::testing::FaultPlan;
using scishuffle::testing::FaultRule;
using scishuffle::testing::TempDir;
namespace site = scishuffle::testing::site;

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

i64 decodeI64(const Bytes& b) {
  MemorySource src(b);
  return readI64(src);
}

/// A corpus plus the job shape that must match between the serial baseline
/// and the service run for outputs to compare byte for byte.
struct Workload {
  std::vector<std::vector<std::string>> docs;
  int num_reducers = 1;
};

Workload makeWorkload(std::mt19937_64& rng) {
  const std::vector<std::string> vocab = {"the",  "windspeed", "grid", "key",   "value",
                                          "map",  "reduce",    "sci",  "curve", "shuffle"};
  Workload w;
  w.num_reducers = 1 + static_cast<int>(rng() % 4);
  const int maps = 2 + static_cast<int>(rng() % 3);
  const int words = 60 + static_cast<int>(rng() % 140);
  w.docs.resize(static_cast<std::size_t>(maps));
  for (auto& doc : w.docs) {
    doc.reserve(static_cast<std::size_t>(words));
    for (int i = 0; i < words; ++i) doc.push_back(vocab[rng() % vocab.size()]);
  }
  return w;
}

/// Builds a JobSpec over `workload`. The docs are captured by value: the
/// service runs the closures long after this frame is gone.
JobSpec specFor(const Workload& workload, const std::string& name, const std::string& codec,
                Priority priority) {
  JobSpec spec;
  spec.name = name;
  spec.priority = priority;
  spec.config.num_reducers = workload.num_reducers;
  spec.config.intermediate_codec = codec;
  spec.config.map_slots = 2;
  spec.config.reduce_slots = 2;
  spec.config.max_task_attempts = 3;
  spec.config.shuffle_retry.enabled = true;
  spec.config.shuffle_retry.max_attempts = 4;
  spec.config.shuffle_retry.base_backoff_us = 10;
  spec.config.shuffle_retry.max_backoff_us = 500;
  for (const auto& doc : workload.docs) {
    spec.map_tasks.push_back(hadoop::MapTask{[doc](const hadoop::EmitFn& emit) {
      for (const auto& word : doc) emit(toBytes(word), encodeI64(1));
    }});
  }
  spec.reduce = [](const Bytes& key, std::vector<Bytes>& values, const hadoop::EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  return spec;
}

/// Random recoverable plan over the pipelined path's injection sites;
/// trigger counts stay below the retry budget so every job must heal.
FaultPlan randomPlan(std::mt19937_64& rng) {
  FaultPlan plan;
  plan.seed = rng();
  const int rules = 1 + static_cast<int>(rng() % 2);
  for (int i = 0; i < rules; ++i) {
    FaultRule rule;
    switch (rng() % 5) {
      case 0: rule = {site::kShuffleFetch, FaultKind::kThrowIo}; break;
      case 1: rule = {site::kShuffleFetch, FaultKind::kCorruptBytes}; break;
      case 2: rule = {site::kShufflePublish, FaultKind::kThrowIo}; break;
      case 3: rule = {site::kBlockDecode, FaultKind::kCorruptBytes}; break;
      default:
        rule = {site::kShuffleFetch, FaultKind::kDelay};
        rule.delay_us = 200;
        break;
    }
    rule.max_triggers = 1 + rng() % 2;
    rule.skip_calls = rng() % 3;
    plan.rules.push_back(rule);
  }
  return plan;
}

TEST(StressJobServiceTest, ConcurrentFaultedFleetMatchesSerialBaselines) {
  const u64 seed = scishuffle::testing::propertySeed();
  std::mt19937_64 rng(seed);
  const std::vector<std::string> codecs = {"null", "gzipish", "bzip2ish", "transform+gzipish"};

  // Per-job metrics JSONL directory: overridable so CI can upload it.
  std::optional<TempDir> fallback;
  std::filesystem::path metricsDir;
  if (const char* env = std::getenv("SCISHUFFLE_SOAK_METRICS_DIR")) {
    metricsDir = env;
    std::filesystem::create_directories(metricsDir);
  } else {
    fallback.emplace("svc_soak_metrics");
    metricsDir = fallback->path();
  }

  constexpr int kWorkloads = 6;
  constexpr int kJobs = 24;
  std::vector<Workload> workloads;
  for (int i = 0; i < kWorkloads; ++i) workloads.push_back(makeWorkload(rng));

  // Serial no-fault baselines, one per (workload, codec) actually used.
  std::vector<std::map<std::string, hadoop::JobResult>> baselines(kWorkloads);

  TempDir overflow("svc_soak_overflow");
  ServiceConfig config;
  config.max_concurrent_jobs = 4;
  config.queue_capacity = kJobs + 1;
  config.memory_budget_bytes = 1ull << 30;  // generous: the governor must run, not bite
  config.governor_interval_ms = 2;
  config.job_reserve_bytes = 8ull << 20;
  config.overflow_dir = overflow.path();
  config.metrics_path = metricsDir / "service_soak.jsonl";
  JobService service(config);

  struct Pending {
    u64 id = 0;
    int workload = 0;
    std::string codec;
    bool faulted = false;
  };
  std::vector<Pending> pending;
  // Fault injectors must outlive their jobs; keep them for the whole soak.
  std::vector<std::unique_ptr<scishuffle::testing::FaultInjector>> injectors;

  for (int job = 0; job < kJobs; ++job) {
    const int w = static_cast<int>(rng() % kWorkloads);
    const std::string codec = codecs[rng() % codecs.size()];
    const auto priority = static_cast<Priority>(rng() % 3);
    const bool faulted = rng() % 2 == 0;

    auto& slot = baselines[static_cast<std::size_t>(w)];
    if (slot.find(codec) == slot.end()) {
      JobSpec serial = specFor(workloads[static_cast<std::size_t>(w)], "baseline", codec,
                               Priority::kNormal);
      serial.config.shuffle_pipeline = false;
      slot.emplace(codec, hadoop::runJob(serial.config, serial.map_tasks, serial.reduce));
    }

    JobSpec spec = specFor(workloads[static_cast<std::size_t>(w)],
                           "soak" + std::to_string(job), codec, priority);
    spec.config.metrics_path = metricsDir / ("job_" + std::to_string(job) + ".jsonl");
    spec.config.sample_interval_ms = 2;
    if (faulted) {
      injectors.push_back(
          std::make_unique<scishuffle::testing::FaultInjector>(randomPlan(rng)));
      spec.config.fault_injector = injectors.back().get();
    }
    const SubmitResult r = service.submit(std::move(spec));
    ASSERT_TRUE(r.accepted) << "job " << job << " rejected";
    pending.push_back(Pending{r.id, w, codec, faulted});
  }

  for (const Pending& p : pending) {
    SCOPED_TRACE("job id " + std::to_string(p.id) + " codec " + p.codec +
                 (p.faulted ? " faulted" : " clean") + ", seed " + std::to_string(seed) +
                 " (SCISHUFFLE_PROP_SEED to replay)");
    hadoop::JobResult result;
    ASSERT_NO_THROW(result = service.takeResult(p.id));
    const hadoop::JobResult& baseline =
        baselines[static_cast<std::size_t>(p.workload)].at(p.codec);
    ASSERT_EQ(result.outputs, baseline.outputs) << "diverged from the serial baseline";
  }

  // Governor verdicts: it sampled, and aggregate RSS never broke the budget.
  const MemoryGovernor* governor = service.governor();
  ASSERT_NE(governor, nullptr);
  EXPECT_GT(governor->sampleCount(), 0u);
  EXPECT_LE(governor->peakRssBytes(), config.memory_budget_bytes)
      << "soak RSS exceeded the governor budget";

  service.shutdown();

  // Every job left a non-empty metrics stream for the artifact upload.
  for (int job = 0; job < kJobs; ++job) {
    const auto path = metricsDir / ("job_" + std::to_string(job) + ".jsonl");
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    if (std::filesystem::exists(path)) {
      EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
    }
  }

  // The soak leaves no pooled bytes outstanding (cancel/teardown hygiene).
  EXPECT_EQ(sharedBytePool().outstandingBytes(), 0u);
}

// A second angle: the governor under a deliberately tight budget must
// throttle (spilling shuffle bytes to disk) yet never corrupt an output.
TEST(StressJobServiceTest, TightBudgetThrottlesWithoutCorruption) {
  const u64 seed = scishuffle::testing::propertySeed() ^ 0x9e3779b97f4a7c15ull;
  std::mt19937_64 rng(seed);

  const Workload workload = makeWorkload(rng);
  JobSpec serial = specFor(workload, "baseline", "gzipish", Priority::kNormal);
  serial.config.shuffle_pipeline = false;
  const hadoop::JobResult baseline =
      hadoop::runJob(serial.config, serial.map_tasks, serial.reduce);

  TempDir overflow("svc_tight_overflow");
  ServiceConfig config;
  config.max_concurrent_jobs = 2;
  config.queue_capacity = 16;
  // currentRssBytes() of a test process is tens of MiB, so a 1-byte budget
  // guarantees the governor throttles from its very first sample.
  config.memory_budget_bytes = 1;
  config.governor_interval_ms = 1;
  config.job_reserve_bytes = 0;
  config.overflow_dir = overflow.path();
  JobService service(config);

  std::vector<u64> ids;
  for (int job = 0; job < 6; ++job) {
    const SubmitResult r =
        service.submit(specFor(workload, "tight" + std::to_string(job), "gzipish",
                               static_cast<Priority>(job % 3)));
    ASSERT_TRUE(r.accepted);
    ids.push_back(r.id);
  }
  for (const u64 id : ids) {
    hadoop::JobResult result;
    ASSERT_NO_THROW(result = service.takeResult(id)) << "job " << id;
    ASSERT_EQ(result.outputs, baseline.outputs) << "job " << id << " diverged under throttle";
  }
  const MemoryGovernor* governor = service.governor();
  ASSERT_NE(governor, nullptr);
  EXPECT_GT(governor->throttleEvents(), 0u) << "a 1-byte budget must throttle";
  service.shutdown();
}

}  // namespace
}  // namespace scishuffle::service
