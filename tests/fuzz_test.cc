// Adversarial-input tests: corrupt or random bytes fed to every decoder must
// raise FormatError (or round-trip if the corruption missed everything that
// matters) — never crash, hang, or allocate unboundedly. Plus a model-based
// randomized engine test against a trivial in-memory shuffle.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "compress/bzip2ish.h"
#include "compress/deflate.h"
#include "hadoop/ifile.h"
#include "hadoop/runtime.h"
#include "hadoop/sequence_file.h"
#include "io/streams.h"
#include "testing_support.h"
#include "transform/transform_codec.h"

namespace scishuffle {
namespace {

template <typename F>
void expectNoCrash(F&& decode, const Bytes& original) {
  try {
    const Bytes out = decode();
    // If it decoded, it must have decoded *correctly* (CRC guards this).
    EXPECT_EQ(out, original);
  } catch (const FormatError&) {
    // expected for most corruptions
  } catch (const std::length_error&) {
    // oversized resize request detected by the standard library — acceptable
  } catch (const std::bad_alloc&) {
    FAIL() << "corrupt input triggered unbounded allocation";
  }
}

class CodecFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(CodecFuzz, SingleByteCorruptionNeverCrashes) {
  const u32 seed = GetParam();
  std::mt19937 rng(seed);
  const Bytes data = testing::gridWalkTriples(12, 12, 12);
  registerTransformCodecs();
  for (const char* name : {"gzipish", "bzip2ish", "transform+gzipish", "transform+bzip2ish"}) {
    const auto codec = CodecRegistry::instance().create(name);
    Bytes compressed = codec->compress(data);
    std::uniform_int_distribution<std::size_t> pick(0, compressed.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int k = 0; k < 20; ++k) {
      Bytes corrupt = compressed;
      corrupt[pick(rng)] ^= static_cast<u8>(1 << bit(rng));
      expectNoCrash([&] { return codec->decompress(corrupt); }, data);
    }
    // Truncations.
    for (int k = 0; k < 10; ++k) {
      Bytes truncated(compressed.begin(),
                      compressed.begin() + static_cast<std::ptrdiff_t>(pick(rng)));
      expectNoCrash([&] { return codec->decompress(truncated); }, data);
    }
  }
}

TEST_P(CodecFuzz, RandomGarbageNeverCrashes) {
  const u32 seed = GetParam();
  registerTransformCodecs();
  const Bytes garbage = testing::randomBytes(4096, seed);
  for (const char* name : {"gzipish", "bzip2ish"}) {
    const auto codec = CodecRegistry::instance().create(name);
    expectNoCrash([&] { return codec->decompress(garbage); }, {});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(0u, 6u));

class IFileFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(IFileFuzz, CorruptionNeverCrashes) {
  std::mt19937 rng(GetParam());
  hadoop::IFileWriter writer(nullptr);
  for (int i = 0; i < 50; ++i) {
    writer.append(testing::randomBytes(static_cast<std::size_t>(i % 17), GetParam() + i),
                  testing::randomBytes(static_cast<std::size_t>((i * 3) % 29), GetParam() - i));
  }
  const Bytes file = writer.close();
  std::uniform_int_distribution<std::size_t> pick(0, file.size() - 1);
  for (int k = 0; k < 30; ++k) {
    Bytes corrupt = file;
    corrupt[pick(rng)] ^= 0xFF;
    try {
      hadoop::IFileReader reader(corrupt, nullptr);
      while (reader.next()) {
      }
    } catch (const FormatError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IFileFuzz, ::testing::Range(0u, 6u));

TEST(SequenceFileFuzz, RandomCorruptionWithRecovery) {
  std::mt19937 rng(99);
  Bytes file;
  MemorySink sink(file);
  hadoop::SequenceFileWriter writer(sink, hadoop::SequenceFileHeader{});
  for (int i = 0; i < 200; ++i) {
    writer.append(testing::randomBytes(8, static_cast<u32>(i)),
                  testing::randomBytes(40, static_cast<u32>(i) + 1));
  }
  writer.close();

  std::uniform_int_distribution<std::size_t> pick(40, file.size() - 1);
  for (int k = 0; k < 20; ++k) {
    Bytes corrupt = file;
    corrupt[pick(rng)] ^= 0xFF;
    hadoop::SequenceFileReader reader(corrupt);
    int records = 0;
    for (;;) {
      try {
        if (!reader.next()) break;
        ++records;
      } catch (const FormatError&) {
        if (!reader.seekToNextSync()) break;
      } catch (const std::length_error&) {
        if (!reader.seekToNextSync()) break;
      }
    }
    EXPECT_GT(records, 0);
  }
}

// ---- Model-based engine test: random jobs vs a trivial reference shuffle.

struct RandomJob {
  std::vector<std::vector<hadoop::KeyValue>> taskRecords;
};

RandomJob makeRandomJob(u32 seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> numTasks(0, 6);
  std::uniform_int_distribution<int> numRecords(0, 300);
  std::uniform_int_distribution<int> keyLen(0, 6);
  std::uniform_int_distribution<int> valueLen(0, 12);
  std::uniform_int_distribution<int> byte(0, 3);  // tiny alphabet -> collisions

  RandomJob job;
  job.taskRecords.resize(static_cast<std::size_t>(numTasks(rng)));
  for (auto& records : job.taskRecords) {
    const int n = numRecords(rng);
    for (int i = 0; i < n; ++i) {
      hadoop::KeyValue kv;
      kv.key.resize(static_cast<std::size_t>(keyLen(rng)));
      for (auto& b : kv.key) b = static_cast<u8>(byte(rng));
      kv.value.resize(static_cast<std::size_t>(valueLen(rng)));
      for (auto& b : kv.value) b = static_cast<u8>(byte(rng));
      records.push_back(std::move(kv));
    }
  }
  return job;
}

/// Reference semantics: group values by key (sorted), concatenate value
/// lengths as the "reduction".
std::map<Bytes, u64> referenceResult(const RandomJob& job) {
  std::map<Bytes, u64> out;
  for (const auto& records : job.taskRecords) {
    for (const auto& kv : records) out[kv.key] += kv.value.size() + 1;
  }
  return out;
}

class EngineModelFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(EngineModelFuzz, MatchesReferenceShuffle) {
  const u32 seed = GetParam();
  const RandomJob job = makeRandomJob(seed);

  std::mt19937 rng(seed ^ 0xABCD);
  hadoop::JobConfig config;
  config.num_reducers = std::uniform_int_distribution<int>(1, 5)(rng);
  config.map_slots = std::uniform_int_distribution<int>(1, 4)(rng);
  config.spill_buffer_bytes = static_cast<std::size_t>(
      std::uniform_int_distribution<int>(64, 4096)(rng));
  const char* codecs[] = {"null", "gzipish", "bzip2ish", "transform+gzipish"};
  config.intermediate_codec = codecs[seed % 4];

  std::vector<hadoop::MapTask> tasks;
  for (const auto& records : job.taskRecords) {
    tasks.push_back(hadoop::MapTask{[&records](const hadoop::EmitFn& emit) {
      for (const auto& kv : records) emit(kv.key, kv.value);
    }});
  }
  const hadoop::ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values,
                                     const hadoop::EmitFn& emit) {
    u64 total = 0;
    for (const auto& v : values) total += v.size() + 1;
    Bytes out(8);
    for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] = static_cast<u8>(total >> (8 * i));
    emit(key, std::move(out));
  };

  const auto result = hadoop::runJob(config, tasks, reduce);
  std::map<Bytes, u64> got;
  for (const auto& part : result.outputs) {
    for (const auto& kv : part) {
      u64 total = 0;
      for (int i = 7; i >= 0; --i) total = (total << 8) | kv.value[static_cast<std::size_t>(i)];
      EXPECT_TRUE(got.emplace(kv.key, total).second) << "key reduced twice";
    }
  }
  EXPECT_EQ(got, referenceResult(job)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModelFuzz, ::testing::Range(0u, 24u));

}  // namespace
}  // namespace scishuffle
