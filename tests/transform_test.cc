#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "transform/predictive_transform.h"
#include "transform/stride_hints.h"
#include "transform/transform_codec.h"
#include "testing_support.h"

namespace scishuffle::transform {
namespace {

double zeroFraction(ByteSpan data) {
  if (data.empty()) return 1.0;
  std::size_t zeros = 0;
  for (const u8 b : data) {
    if (b == 0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(data.size());
}

TEST(StrideModelTest, LearnsASimpleLinearSequence) {
  // Input: 0,1,2,3,... — stride 1 with delta 1 predicts perfectly after the
  // run threshold is met.
  TransformConfig config;
  config.max_stride = 8;
  StrideModel model(config);
  int predicted = 0;
  for (int i = 0; i < 100; ++i) {
    const u8 x = static_cast<u8>(i);
    const auto p = model.predict();
    if (p) {
      EXPECT_EQ(*p, x);
      ++predicted;
    }
    model.consume(x);
  }
  EXPECT_GT(predicted, 80);
}

TEST(StrideModelTest, BruteForceKeepsEverythingActive) {
  TransformConfig config;
  config.max_stride = 20;
  config.adaptive = false;
  StrideModel model(config);
  const Bytes data = testing::randomBytes(5000, 3);
  for (const u8 b : data) model.consume(b);
  EXPECT_EQ(model.activeCount(), 20);
}

TEST(StrideModelTest, AdaptiveEvictsOnRandomData) {
  TransformConfig config;
  config.max_stride = 50;
  StrideModel model(config);
  const Bytes data = testing::randomBytes(20000, 4);
  for (const u8 b : data) model.consume(b);
  // Random data defeats every stride; the active set must have collapsed to
  // roughly the re-admission churn level.
  EXPECT_LT(model.activeCount(), 10);
}

TEST(StrideModelTest, ExplicitStrideSetIsHonored) {
  TransformConfig config;
  config.explicit_strides = {12};
  config.adaptive = false;
  StrideModel model(config);
  EXPECT_EQ(model.activeCount(), 1);
  EXPECT_EQ(model.activeStrides().front(), 12);
}

struct TransformCase {
  const char* name;
  TransformConfig config;
};

class TransformRoundTrip : public ::testing::TestWithParam<TransformCase> {};

TEST_P(TransformRoundTrip, ForwardInverseIsIdentity) {
  const PredictiveTransform transform(GetParam().config);
  const std::vector<Bytes> inputs = {
      {},
      {1},
      testing::randomBytes(10000, 1),
      testing::runnyBytes(10000, 2),
      testing::gridWalkTriples(12, 12, 12),
      testing::namedKeyStream("windspeed1", 30, 30, 0.5f),
  };
  for (const auto& input : inputs) {
    const Bytes residuals = transform.forward(input);
    ASSERT_EQ(residuals.size(), input.size());
    EXPECT_EQ(transform.inverse(residuals), input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TransformRoundTrip,
    ::testing::Values(
        TransformCase{"default", {}},
        TransformCase{"brute", {.max_stride = 30, .adaptive = false}},
        TransformCase{"single12", {.explicit_strides = {12}, .adaptive = false}},
        TransformCase{"tinycycle", {.max_stride = 16, .selection_cycle_bytes = 32}},
        TransformCase{"bigwarmup", {.max_stride = 40, .eviction_warmup_strides = 8}}),
    [](const ::testing::TestParamInfo<TransformCase>& info) { return info.param.name; });

TEST(TransformTest, GridWalkResidualsAreMostlyZero) {
  // The whole point of §III: a serialized grid walk becomes almost all zeros.
  const Bytes stream = testing::gridWalkTriples(20, 20, 20);
  const PredictiveTransform transform(TransformConfig{.max_stride = 100});
  const Bytes residuals = transform.forward(stream);
  EXPECT_GT(zeroFraction(residuals), 0.95);
  EXPECT_LT(zeroFraction(stream), 0.80);
}

TEST(TransformTest, NamedKeyStreamResidualsAreMostlyZero) {
  const Bytes stream = testing::namedKeyStream("windspeed1", 50, 50, 2.0f);
  const PredictiveTransform transform(TransformConfig{.max_stride = 100});
  EXPECT_GT(zeroFraction(transform.forward(stream)), 0.90);
}

TEST(TransformTest, FixedStride12OnTripleStream) {
  // Keys of 12 serialized bytes: the paper's "single stride length of 12".
  const Bytes stream = testing::gridWalkTriples(16, 16, 16);
  const PredictiveTransform transform(
      TransformConfig{.explicit_strides = {12}, .adaptive = false});
  const Bytes residuals = transform.forward(stream);
  EXPECT_GT(zeroFraction(residuals), 0.9);
  EXPECT_EQ(transform.inverse(residuals), stream);
}

/// Source that yields data in tiny irregular chunks, exercising every
/// buffer-boundary path in the streaming transform.
class DribblingSource final : public ByteSource {
 public:
  explicit DribblingSource(ByteSpan data) : data_(data) {}

 protected:
  std::size_t readSome(MutableByteSpan out) override {
    if (pos_ >= data_.size()) return 0;
    const std::size_t chunk = 1 + (pos_ * 7919) % 7;  // 1..7 bytes
    const std::size_t n = std::min({out.size(), chunk, data_.size() - pos_});
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n), out.begin());
    pos_ += n;
    return n;
  }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

TEST(TransformTest, StreamingIsChunkingInvariant) {
  // The same bytes through a dribbling source and through the one-shot span
  // API must produce identical residuals (the model carries no per-read
  // state), including across the internal 64 KiB chunk boundary.
  const Bytes stream = testing::gridWalkTriples(30, 30, 30);  // 324,000 bytes
  ASSERT_GT(stream.size(), 128u * 1024u);
  const PredictiveTransform transform{};

  const Bytes oneShot = transform.forward(stream);

  DribblingSource source(stream);
  Bytes dribbled;
  MemorySink sink(dribbled);
  transform.forward(source, sink);
  EXPECT_EQ(dribbled, oneShot);

  DribblingSource back(oneShot);
  Bytes restored;
  MemorySink restoredSink(restored);
  transform.inverse(back, restoredSink);
  EXPECT_EQ(restored, stream);
}

TEST(StrideHintsTest, RecordLengthArithmetic) {
  // The Fig. 2 stream: Text("windspeed1") + 2 coords + f32 value = 23 bytes.
  EXPECT_EQ(recordLengthForKeyStream(10, /*nameMode=*/true, 2, 4), 23u);
  // Index mode, 4-D keys, f32 value: 4 + 16 + 4 = 24.
  EXPECT_EQ(recordLengthForKeyStream(0, /*nameMode=*/false, 4, 4), 24u);
  // Inside an IFile each record pays 2 vint length bytes (small records).
  EXPECT_EQ(recordLengthInIFile(20, 4), 26u);
}

TEST(StrideHintsTest, MetadataConfigMatchesDetectedStride) {
  // A transform seeded purely from metadata must predict the named key
  // stream as well as the adaptive detector does.
  const Bytes stream = testing::namedKeyStream("windspeed1", 40, 40, 1.0f);
  const std::size_t record = recordLengthForKeyStream(10, true, 2, 4);
  const PredictiveTransform hinted(configFromMetadata(record));
  const Bytes residuals = hinted.forward(stream);
  EXPECT_GT(zeroFraction(residuals), 0.9);
  EXPECT_EQ(hinted.inverse(residuals), stream);
}

TEST(StrideHintsTest, ConfigValidation) {
  EXPECT_THROW(configFromMetadata(0), std::logic_error);
  const auto config = configFromMetadata(23, 3);
  EXPECT_EQ(config.explicit_strides, (std::vector<int>{23, 46, 69}));
  EXPECT_FALSE(config.adaptive);
}

TEST(TransformCodecTest, RoundTripsAndRegisters) {
  registerTransformCodecs();
  for (const char* name : {"transform+gzipish", "transform+bzip2ish"}) {
    const auto codec = CodecRegistry::instance().create(name);
    EXPECT_EQ(codec->name(), name);
    for (const auto& data :
         {testing::gridWalkTriples(15, 15, 15), testing::randomBytes(30000, 7)}) {
      EXPECT_EQ(codec->decompress(codec->compress(data)), data);
    }
  }
}

TEST(TransformCodecTest, TransformBeatsPlainCompressionOnKeyStreams) {
  registerTransformCodecs();
  const Bytes stream = testing::gridWalkTriples(30, 30, 30);
  const auto plain = CodecRegistry::instance().create("gzipish");
  const auto composed = CodecRegistry::instance().create("transform+gzipish");
  const auto plainSize = plain->compress(stream).size();
  const auto composedSize = composed->compress(stream).size();
  EXPECT_LT(composedSize * 2, plainSize);  // at least 2x better on key streams
}

// The batch entry points (which may use the SIMD subtract sweep and the
// phase-carrying scan) must be observably identical to stepping the scalar
// reference predict()/consume() byte by byte — same outputs AND the same
// final model state, since eviction/rotation decisions depend on every
// intermediate update.
TEST(StrideModelTest, ForwardBatchMatchesScalarReference) {
  for (const u32 seed : {1u, 2u, 3u}) {
    for (const auto& data :
         {testing::gridWalkTriples(12, 12, 12), testing::randomBytes(40000, seed),
          testing::runnyBytes(40000, seed), Bytes(5000, 0)}) {
      TransformConfig config;
      config.max_stride = 64;
      StrideModel batch(config);
      StrideModel scalar(config);

      Bytes batchOut(data.size());
      batch.forwardBatch(data.data(), batchOut.data(), data.size());

      Bytes scalarOut;
      scalarOut.reserve(data.size());
      for (const u8 x : data) {
        const auto p = scalar.predict();
        scalarOut.push_back(p ? static_cast<u8>(x - *p) : x);
        scalar.consume(x);
      }

      ASSERT_EQ(batchOut, scalarOut);
      EXPECT_EQ(batch.offset(), scalar.offset());
      EXPECT_EQ(batch.activeStrides(), scalar.activeStrides());
    }
  }
}

TEST(StrideModelTest, InverseBatchMatchesScalarReference) {
  const Bytes original = testing::gridWalkTriples(14, 14, 14);
  TransformConfig config;
  config.max_stride = 48;

  // Residuals from the forward pass feed both inverse implementations.
  StrideModel fwd(config);
  Bytes residuals(original.size());
  fwd.forwardBatch(original.data(), residuals.data(), original.size());

  StrideModel batch(config);
  Bytes batchOut(residuals.size());
  batch.inverseBatch(residuals.data(), batchOut.data(), residuals.size());

  StrideModel scalar(config);
  Bytes scalarOut;
  scalarOut.reserve(residuals.size());
  for (const u8 y : residuals) {
    const auto p = scalar.predict();
    const u8 x = p ? static_cast<u8>(y + *p) : y;
    scalarOut.push_back(x);
    scalar.consume(x);
  }

  EXPECT_EQ(batchOut, original);  // the inverse really inverts
  EXPECT_EQ(scalarOut, original);
  EXPECT_EQ(batch.activeStrides(), scalar.activeStrides());
}

TEST(StrideModelTest, BatchSplitPointsDoNotChangeResults) {
  // forwardBatch(a) then forwardBatch(b) == forwardBatch(a+b): the model
  // carries all state across batch boundaries (the streaming transform
  // depends on this chunking invariance).
  const Bytes data = testing::gridWalkTriples(10, 10, 10);
  TransformConfig config;
  config.max_stride = 32;

  StrideModel whole(config);
  Bytes wholeOut(data.size());
  whole.forwardBatch(data.data(), wholeOut.data(), data.size());

  for (const std::size_t split : {std::size_t{1}, data.size() / 3, data.size() - 1}) {
    StrideModel parts(config);
    Bytes partsOut(data.size());
    parts.forwardBatch(data.data(), partsOut.data(), split);
    parts.forwardBatch(data.data() + split, partsOut.data() + split, data.size() - split);
    EXPECT_EQ(partsOut, wholeOut) << "split at " << split;
  }
}

}  // namespace
}  // namespace scishuffle::transform
