// Simulator fidelity gate: run a real multi-process distributed job, feed its
// measured per-task stats into the discrete-event cluster simulator with a
// spec matching the actual topology, and require the simulated phase timings
// to land within tolerance of the wall clock we just measured. This keeps the
// simulator honest against the thing it claims to model — if the distributed
// runtime's phase structure drifts, this test fails before the paper-scale
// extrapolations silently go wrong.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "service/coordinator.h"
#include "service/workload.h"

namespace {

using namespace scishuffle;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    char tmpl[] = "/tmp/scishuffle-simfi-XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(SimFidelityTest, SimulatorTracksMeasuredDistributedPhases) {
  TempDir dir;
  service::DistributedConfig cfg;
  cfg.num_workers = 2;
  cfg.worker_command = {SCISHUFFLE_WORKER_BIN};
  cfg.work_dir = dir.path;
  // Big enough that per-task CPU dominates the fork/hello/assign overheads
  // the simulator does not model.
  const std::vector<std::string> args = {"6", "20000"};
  const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);
  ASSERT_EQ(dist.worker_deaths, 0);
  ASSERT_GT(dist.job.timings.map_phase_us, 0u);
  ASSERT_GT(dist.job.timings.reduce_phase_us, 0u);

  // Spec mirrors the run we just did: one node per worker, one concurrent
  // map per worker (the coordinator keeps one assignment in flight each),
  // reduce slots as configured in the workload. Disk/net are set absurdly
  // fast because the loopback UNIX-socket transport is not the bottleneck —
  // what is left is the CPU model, which is what fidelity means here.
  cluster::ClusterSpec spec;
  spec.nodes = cfg.num_workers;
  spec.map_slots = cfg.num_workers;
  spec.reduce_slots = service::buildWorkload("wordcount", args).config.reduce_slots;
  spec.disk_mb_per_s = 50'000.0;
  spec.net_mb_per_s = 50'000.0;
  spec.cpu_scale = 1.0;

  const cluster::SimJob job = cluster::simJobFromResult(dist.job, spec, 1.0);
  const cluster::SimOutcome sim = cluster::EventSimulator(spec).run(job);
  ASSERT_GT(sim.map_phase_done_s, 0.0);
  ASSERT_GT(sim.total_s, 0.0);

  const double measuredMapS = static_cast<double>(dist.job.timings.map_phase_us) / 1e6;
  const double measuredTotalS =
      static_cast<double>(dist.job.timings.map_phase_us + dist.job.timings.reduce_phase_us) / 1e6;

  const double mapRatio = sim.map_phase_done_s / measuredMapS;
  const double totalRatio = sim.total_s / measuredTotalS;
  RecordProperty("measured_map_s", std::to_string(measuredMapS));
  RecordProperty("sim_map_s", std::to_string(sim.map_phase_done_s));
  RecordProperty("measured_total_s", std::to_string(measuredTotalS));
  RecordProperty("sim_total_s", std::to_string(sim.total_s));

  // Tolerance is deliberately loose (5x either way): the simulator omits
  // process spawn, frame round-trips and scheduler latency, and CI machines
  // are noisy — but a broken mapping is off by orders of magnitude, not 5x.
  EXPECT_GT(mapRatio, 0.2) << "sim map phase far below measurement: sim=" << sim.map_phase_done_s
                           << "s measured=" << measuredMapS << "s";
  EXPECT_LT(mapRatio, 5.0) << "sim map phase far above measurement: sim=" << sim.map_phase_done_s
                           << "s measured=" << measuredMapS << "s";
  EXPECT_GT(totalRatio, 0.2) << "sim total far below measurement: sim=" << sim.total_s
                             << "s measured=" << measuredTotalS << "s";
  EXPECT_LT(totalRatio, 5.0) << "sim total far above measurement: sim=" << sim.total_s
                             << "s measured=" << measuredTotalS << "s";

  // Structural sanity, independent of wall-clock noise: phases are ordered
  // and every simulated task finished.
  EXPECT_LE(sim.map_phase_done_s, sim.shuffle_done_s);
  EXPECT_LE(sim.shuffle_done_s, sim.total_s);
  EXPECT_EQ(sim.map_finish_s.size(), dist.job.map_tasks.size());
  EXPECT_EQ(sim.reduce_finish_s.size(), dist.job.outputs.size());
}

}  // namespace
