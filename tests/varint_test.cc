// Edge cases for the Hadoop WritableUtils vlong codec: max-length encodings,
// EOF mid-varint, and the stream offset carried by FormatError messages.
#include <gtest/gtest.h>

#include <limits>

#include "io/streams.h"
#include "io/varint.h"
#include "testing_support.h"

namespace scishuffle {
namespace {

Bytes encode(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeVLong(sink, v);
  return out;
}

TEST(VarintTest, MaxLengthEncodingsRoundTrip) {
  // The 9-byte extremes and every byte-count boundary in between.
  const i64 cases[] = {std::numeric_limits<i64>::max(),
                       std::numeric_limits<i64>::min(),
                       std::numeric_limits<i64>::max() - 1,
                       std::numeric_limits<i64>::min() + 1,
                       127,
                       128,
                       -112,
                       -113,
                       255,
                       256,
                       65535,
                       65536,
                       static_cast<i64>(1) << 32,
                       -(static_cast<i64>(1) << 32),
                       0};
  for (const i64 v : cases) {
    const Bytes buf = encode(v);
    EXPECT_EQ(buf.size(), vlongSize(v)) << v;
    MemorySource src(buf);
    EXPECT_EQ(readVLong(src), v) << v;
    EXPECT_EQ(src.remaining(), 0u) << v;
  }
  EXPECT_EQ(encode(std::numeric_limits<i64>::max()).size(), 9u);
  EXPECT_EQ(encode(std::numeric_limits<i64>::min()).size(), 9u);
}

TEST(VarintTest, EofAtStartNamesOffsetZero) {
  const Bytes empty;
  MemorySource src(empty);
  try {
    readVLong(src);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("EOF reading vlong"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("offset 0"), std::string::npos) << e.what();
  }
}

TEST(VarintTest, EofMidVarintNamesStartOffset) {
  // A few leading single-byte vlongs, then a 9-byte encoding cut short: the
  // error must name the offset where the truncated vlong *started*.
  Bytes buf;
  MemorySink sink(buf);
  writeVLong(sink, 1);
  writeVLong(sink, 2);
  writeVLong(sink, 3);
  const std::size_t start = buf.size();
  writeVLong(sink, std::numeric_limits<i64>::max());
  for (std::size_t cut = start + 1; cut < buf.size(); ++cut) {
    Bytes truncated(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
    MemorySource src(truncated);
    EXPECT_EQ(readVLong(src), 1);
    EXPECT_EQ(readVLong(src), 2);
    EXPECT_EQ(readVLong(src), 3);
    try {
      readVLong(src);
      FAIL() << "expected FormatError at cut " << cut;
    } catch (const FormatError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("EOF inside vlong"), std::string::npos) << what;
      EXPECT_NE(what.find("offset " + std::to_string(start)), std::string::npos) << what;
    }
  }
}

TEST(VarintTest, FirstByteNegativityMatchesDecodedSign) {
  for (int b = 0; b < 256; ++b) {
    const u8 fb = static_cast<u8>(b);
    // Feed the first byte plus enough zero payload for any length.
    Bytes buf(10, 0);
    buf[0] = fb;
    MemorySource src(buf);
    const i64 v = readVLong(src);
    EXPECT_EQ(vlongFirstByteIsNegative(fb), v < 0) << "first byte " << b;
  }
}

TEST(VarintTest, VIntRejectsOutOfRange) {
  const Bytes big = encode(static_cast<i64>(1) << 40);
  MemorySource src(big);
  EXPECT_THROW(readVInt(src), FormatError);
}

}  // namespace
}  // namespace scishuffle
