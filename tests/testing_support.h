// Shared helpers for scishuffle tests: deterministic data generators that
// mimic the byte patterns the paper cares about.
#pragma once

#include <random>
#include <string>

#include "io/common.h"
#include "io/primitives.h"
#include "io/streams.h"

namespace scishuffle::testing {

/// Uniform random bytes from a fixed seed.
inline Bytes randomBytes(std::size_t n, u32 seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  Bytes out(n);
  for (auto& b : out) b = static_cast<u8>(dist(rng));
  return out;
}

/// Low-entropy bytes: long runs with occasional switches.
inline Bytes runnyBytes(std::size_t n, u32 seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> value(0, 255);
  std::uniform_int_distribution<int> runLen(1, 300);
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const u8 v = static_cast<u8>(value(rng));
    const std::size_t len = std::min<std::size_t>(static_cast<std::size_t>(runLen(rng)),
                                                  n - out.size());
    out.insert(out.end(), len, v);
  }
  return out;
}

/// The paper's canonical input: serialized int32 triples from a row-major
/// walk of an nx*ny*nz grid (Fig. 3 uses 100^3 -> 12,000,000 bytes).
inline Bytes gridWalkTriples(i32 nx, i32 ny, i32 nz) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
              static_cast<std::size_t>(nz) * 12);
  MemorySink sink(out);
  for (i32 x = 0; x < nx; ++x) {
    for (i32 y = 0; y < ny; ++y) {
      for (i32 z = 0; z < nz; ++z) {
        writeI32(sink, x);
        writeI32(sink, y);
        writeI32(sink, z);
      }
    }
  }
  return out;
}

/// Key stream with a variable-name prefix per key, like Fig. 2's
/// "windspeed1" records.
inline Bytes namedKeyStream(const std::string& name, i32 nx, i32 ny, float value) {
  Bytes out;
  MemorySink sink(out);
  for (i32 x = 0; x < nx; ++x) {
    for (i32 y = 0; y < ny; ++y) {
      writeText(sink, name);
      writeI32(sink, x);
      writeI32(sink, y);
      writeF32(sink, value + static_cast<float>(x + y));
    }
  }
  return out;
}

}  // namespace scishuffle::testing
