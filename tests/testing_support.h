// Shared helpers for scishuffle tests: deterministic data generators that
// mimic the byte patterns the paper cares about, plus a strict little JSON
// parser for validating the JSON artifacts the observability layer emits
// (trace files, jobReportJson, BENCH_*.json).
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/common.h"
#include "io/primitives.h"
#include "io/streams.h"

namespace scishuffle::testing {

/// RAII temporary directory under the system temp root, removed recursively
/// on destruction. Replaces the ad-hoc create/remove_all pairs the suites
/// used to carry.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "scishuffle") {
    static std::atomic<u64> counter{0};
    std::random_device rd;
    const u64 tag = (static_cast<u64>(rd()) << 16) ^ counter.fetch_add(1);
    path_ = std::filesystem::temp_directory_path() / (prefix + "_" + std::to_string(tag));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::filesystem::path file(const std::string& name) const { return path_ / name; }

 private:
  std::filesystem::path path_;
};

inline constexpr u64 kDefaultPropertySeed = 20260806;

/// Seed for the randomized suites: SCISHUFFLE_PROP_SEED in the environment
/// overrides the fixed default, and every suite logs the seed it ran with so
/// a failure replays exactly.
inline u64 propertySeed() {
  if (const char* env = std::getenv("SCISHUFFLE_PROP_SEED")) {
    return static_cast<u64>(std::strtoull(env, nullptr, 10));
  }
  return kDefaultPropertySeed;
}

/// gtest fixture with a per-test PRNG seeded from propertySeed(); the seed is
/// recorded in the test output for replay.
class SeededRngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = propertySeed();
    rng_.seed(seed_);
    RecordProperty("scishuffle_seed", std::to_string(seed_));
  }

  u64 seed_ = 0;
  std::mt19937_64 rng_;
};

/// Uniform random bytes from a fixed seed.
inline Bytes randomBytes(std::size_t n, u32 seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  Bytes out(n);
  for (auto& b : out) b = static_cast<u8>(dist(rng));
  return out;
}

/// Low-entropy bytes: long runs with occasional switches.
inline Bytes runnyBytes(std::size_t n, u32 seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> value(0, 255);
  std::uniform_int_distribution<int> runLen(1, 300);
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const u8 v = static_cast<u8>(value(rng));
    const std::size_t len = std::min<std::size_t>(static_cast<std::size_t>(runLen(rng)),
                                                  n - out.size());
    out.insert(out.end(), len, v);
  }
  return out;
}

/// The paper's canonical input: serialized int32 triples from a row-major
/// walk of an nx*ny*nz grid (Fig. 3 uses 100^3 -> 12,000,000 bytes).
inline Bytes gridWalkTriples(i32 nx, i32 ny, i32 nz) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
              static_cast<std::size_t>(nz) * 12);
  MemorySink sink(out);
  for (i32 x = 0; x < nx; ++x) {
    for (i32 y = 0; y < ny; ++y) {
      for (i32 z = 0; z < nz; ++z) {
        writeI32(sink, x);
        writeI32(sink, y);
        writeI32(sink, z);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- JSON

/// Parsed JSON value. Numbers are kept as doubles (every number the project
/// emits fits exactly in a double or only needs approximate checks).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::out_of_range("no JSON key: " + key);
    return it->second;
  }
  u64 asU64() const { return static_cast<u64>(number); }
};

/// Strict recursive-descent parser; throws std::runtime_error on any syntax
/// error or trailing garbage. No \uXXXX decoding (the project never emits
/// non-ASCII) — the escape is preserved verbatim.
class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    const JsonValue v = p.parseValue();
    p.skipWs();
    if (p.pos_ != p.text_.size()) throw std::runtime_error("trailing JSON garbage");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at offset " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("truncated \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: throw std::runtime_error("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error("raw control character in JSON string");
      } else {
        out += c;
      }
    }
  }

  JsonValue parseValue() {
    skipWs();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skipWs();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skipWs();
        std::string key = parseString();
        skipWs();
        expect(':');
        if (!v.object.emplace(std::move(key), parseValue()).second) {
          throw std::runtime_error("duplicate JSON object key");
        }
        skipWs();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skipWs();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array.push_back(parseValue());
        skipWs();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parseString();
      return v;
    }
    if (consumeLiteral("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consumeLiteral("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consumeLiteral("null")) return v;
    // Number.
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("invalid JSON value");
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Key stream with a variable-name prefix per key, like Fig. 2's
/// "windspeed1" records.
inline Bytes namedKeyStream(const std::string& name, i32 nx, i32 ny, float value) {
  Bytes out;
  MemorySink sink(out);
  for (i32 x = 0; x < nx; ++x) {
    for (i32 y = 0; y < ny; ++y) {
      writeText(sink, name);
      writeI32(sink, x);
      writeI32(sink, y);
      writeF32(sink, value + static_cast<float>(x + y));
    }
  }
  return out;
}

}  // namespace scishuffle::testing
