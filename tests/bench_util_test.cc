#include <gtest/gtest.h>

#include "bench_util/bench_util.h"

namespace scishuffle::bench {
namespace {

TEST(FormatTest, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(26000006), "26,000,006");
  EXPECT_EQ(withCommas(1234567890123ull), "1,234,567,890,123");
}

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(humanBytes(512), "512.0 B");
  EXPECT_EQ(humanBytes(55.5e9), "55.5 GB");
  EXPECT_EQ(humanBytes(3.81e6), "3.81 MB");
}

TEST(FormatTest, PercentChange) {
  EXPECT_EQ(percentChange(183, 377), "+106.0%");
  EXPECT_EQ(percentChange(183, 131), "-28.4%");
  EXPECT_EQ(percentChange(100, 100), "+0.0%");
}

TEST(LinearFitTest, PerfectLine) {
  const auto fit = fitLinear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasLowerR2) {
  const auto fit = fitLinear({1, 2, 3, 4, 5}, {2.1, 3.9, 6.3, 7.7, 10.4});
  EXPECT_GT(fit.r_squared, 0.97);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
}

TEST(WorkloadTest, GridWalkStreamMatchesFig3Size) {
  EXPECT_EQ(gridWalkStream(10).size(), 12'000u);
  // The Fig. 3 input at n = 100 is 12,000,000 bytes (verified cheaply here
  // via the formula; the bench itself builds the full stream).
  EXPECT_EQ(static_cast<u64>(100) * 100 * 100 * 12, 12'000'000u);
}

TEST(WorkloadTest, GridWalkIsBigEndianTriples) {
  const Bytes s = gridWalkStream(2);
  // First triple is (0,0,0), second (0,0,1).
  EXPECT_EQ(s[11], 0u);
  EXPECT_EQ(s[23], 1u);
}

TEST(WorkloadTest, MakeIntGridIsDeterministic) {
  const auto a = makeIntGrid("v", {8, 8}, 5);
  const auto b = makeIntGrid("v", {8, 8}, 5);
  const auto c = makeIntGrid("v", {8, 8}, 6);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_NE(a.raw(), c.raw());
}

}  // namespace
}  // namespace scishuffle::bench
