#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "compress/huffman.h"
#include "io/streams.h"
#include "testing_support.h"

namespace scishuffle::huffman {
namespace {

double kraftSum(const std::vector<u8>& lengths) {
  double sum = 0;
  for (const u8 l : lengths) {
    if (l > 0) sum += std::ldexp(1.0, -static_cast<int>(l));
  }
  return sum;
}

TEST(HuffmanLengths, EmptyAndSingleton) {
  EXPECT_TRUE(codeLengths({}, 15).empty());
  const auto single = codeLengths({0, 7, 0}, 15);
  EXPECT_EQ(single[1], 1);
  EXPECT_EQ(single[0], 0);
  EXPECT_EQ(single[2], 0);
}

TEST(HuffmanLengths, MatchesClassicExample) {
  // Frequencies 1,1,2,4: optimal lengths 3,3,2,1.
  const auto lengths = codeLengths({1, 1, 2, 4}, 15);
  EXPECT_EQ(lengths[0], 3);
  EXPECT_EQ(lengths[1], 3);
  EXPECT_EQ(lengths[2], 2);
  EXPECT_EQ(lengths[3], 1);
}

TEST(HuffmanLengths, LengthLimitIsRespected) {
  // Fibonacci-ish weights force deep trees without a limit.
  std::vector<u64> freqs = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987};
  const auto lengths = codeLengths(freqs, 8);
  for (const u8 l : lengths) EXPECT_LE(l, 8);
  EXPECT_LE(kraftSum(lengths), 1.0 + 1e-12);
}

class HuffmanProperty : public ::testing::TestWithParam<u32> {};

TEST_P(HuffmanProperty, KraftEqualityAndDecodability) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> alphabet(2, 300);
  std::uniform_int_distribution<u64> freq(0, 1000);
  const int n = alphabet(rng);
  std::vector<u64> freqs(static_cast<std::size_t>(n));
  for (auto& f : freqs) f = freq(rng);
  freqs[0] = std::max<u64>(freqs[0], 1);
  freqs[static_cast<std::size_t>(n) - 1] = std::max<u64>(freqs[static_cast<std::size_t>(n) - 1], 1);

  const auto lengths = codeLengths(freqs, 15);
  int nonZero = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      EXPECT_GT(lengths[s], 0) << s;
      ++nonZero;
    } else {
      EXPECT_EQ(lengths[s], 0) << s;
    }
  }
  // A complete optimal prefix code on >= 2 symbols saturates Kraft.
  if (nonZero >= 2) EXPECT_NEAR(kraftSum(lengths), 1.0, 1e-9);

  // Encode a stream drawn from the distribution and decode it back.
  std::vector<u32> symbols;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    for (u64 k = 0; k < freqs[s] % 17; ++k) symbols.push_back(static_cast<u32>(s));
  }
  if (symbols.empty() || nonZero < 2) return;
  Bytes buf;
  MemorySink sink(buf);
  BitWriter bw(sink);
  const Encoder enc(lengths);
  for (const u32 s : symbols) enc.encode(bw, s);
  bw.finish();

  MemorySource src(buf);
  BitReader br(src);
  const Decoder dec(lengths);
  for (const u32 s : symbols) EXPECT_EQ(dec.decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty, ::testing::Range(0u, 20u));

TEST(HuffmanLengths, PackageMergeIsOptimalWhenDepthUnconstrained) {
  // With a generous depth limit, package-merge must equal classic Huffman's
  // total cost: sum(freq * length) minimal. Compare against a direct
  // two-queue Huffman construction.
  std::mt19937 rng(99);
  std::uniform_int_distribution<u64> freq(1, 500);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<u64> freqs(64);
    for (auto& f : freqs) f = freq(rng);

    // Reference: classic Huffman total cost via repeated min-merging.
    std::multiset<u64> queue(freqs.begin(), freqs.end());
    u64 optimalCost = 0;
    while (queue.size() > 1) {
      const u64 a = *queue.begin();
      queue.erase(queue.begin());
      const u64 b = *queue.begin();
      queue.erase(queue.begin());
      optimalCost += a + b;
      queue.insert(a + b);
    }

    const auto lengths = codeLengths(freqs, 32);
    u64 cost = 0;
    for (std::size_t s = 0; s < freqs.size(); ++s) cost += freqs[s] * lengths[s];
    EXPECT_EQ(cost, optimalCost) << "trial " << trial;
  }
}

class CompressedLengthsRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(CompressedLengthsRoundTrip, RoundTrips) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> size(1, 600);
  std::uniform_int_distribution<int> len(0, 15);
  std::uniform_int_distribution<int> runLen(1, 150);
  std::vector<u8> lengths;
  const int n = size(rng);
  while (static_cast<int>(lengths.size()) < n) {
    const u8 v = static_cast<u8>(len(rng));
    const int run = std::min(runLen(rng), n - static_cast<int>(lengths.size()));
    lengths.insert(lengths.end(), static_cast<std::size_t>(run), v);
  }

  Bytes buf;
  MemorySink sink(buf);
  BitWriter bw(sink);
  writeCompressedLengths(bw, lengths);
  bw.finish();

  MemorySource src(buf);
  BitReader br(src);
  EXPECT_EQ(readCompressedLengths(br, lengths.size()), lengths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedLengthsRoundTrip, ::testing::Range(100u, 120u));

TEST(CompressedLengths, AllZerosStaysTiny) {
  // Degenerate tables (the transform+bzip2ish case) must not pay a big
  // header: 258 zero lengths should occupy only a few bytes.
  std::vector<u8> lengths(258, 0);
  lengths[0] = 1;
  lengths[1] = 1;
  Bytes buf;
  MemorySink sink(buf);
  BitWriter bw(sink);
  writeCompressedLengths(bw, lengths);
  bw.finish();
  EXPECT_LE(buf.size(), 16u);
}

}  // namespace
}  // namespace scishuffle::huffman
