// ShuffleServer edge cases: zero-map jobs, publishes racing waiting
// reducers, concurrent fetchers on one queue, retained-copy refetch, and
// abort waking blocked fetchers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "hadoop/runtime.h"
#include "hadoop/shuffle.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

Bytes segmentFor(std::size_t map, int reducer) {
  return Bytes{static_cast<u8>('S'), static_cast<u8>(map), static_cast<u8>(reducer)};
}

std::vector<Bytes> segmentsFor(std::size_t map, int reducers) {
  std::vector<Bytes> out;
  for (int r = 0; r < reducers; ++r) out.push_back(segmentFor(map, r));
  return out;
}

TEST(ShuffleServerTest, ZeroMapsDrainsImmediately) {
  ShuffleServer server(0, 2);
  // No publishes will ever happen; fetch must return nullopt right away
  // instead of blocking forever.
  EXPECT_FALSE(server.fetch(0).has_value());
  EXPECT_FALSE(server.fetch(1).has_value());
}

TEST(ShuffleServerTest, ZeroMapJobProducesEmptyOutputsOnPipelinedPath) {
  JobConfig config;
  config.num_reducers = 3;
  config.shuffle_pipeline = true;
  const ReduceFn reduce = [](const Bytes&, std::vector<Bytes>&, const EmitFn&) {};
  const JobResult result = runJob(config, {}, reduce);
  ASSERT_EQ(result.outputs.size(), 3u);
  for (const auto& out : result.outputs) EXPECT_TRUE(out.empty());
}

TEST(ShuffleServerTest, LatePublishReachesWaitingReducer) {
  ShuffleServer server(1, 1);
  std::atomic<bool> fetched{false};
  std::thread reducer([&] {
    const auto got = server.fetch(0);  // blocks: nothing published yet
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->map_index, 0u);
    EXPECT_EQ(got->segment, segmentFor(0, 0));
    fetched.store(true);
    EXPECT_FALSE(server.fetch(0).has_value());  // drained
  });
  // Give the reducer time to actually park on the condition variable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fetched.load());
  server.publish(0, segmentsFor(0, 1));
  reducer.join();
  EXPECT_TRUE(fetched.load());
}

TEST(ShuffleServerTest, ConcurrentFetchersSplitOneQueueWithoutLossOrDuplication) {
  constexpr std::size_t kMaps = 64;
  ShuffleServer server(kMaps, 1);

  std::vector<std::vector<std::size_t>> taken(4);
  std::vector<std::thread> fetchers;
  for (std::size_t t = 0; t < taken.size(); ++t) {
    fetchers.emplace_back([&, t] {
      while (const auto got = server.fetch(0)) {
        EXPECT_EQ(got->segment, segmentFor(got->map_index, 0));
        taken[t].push_back(got->map_index);
      }
    });
  }
  std::thread publisher([&] {
    for (std::size_t m = 0; m < kMaps; ++m) server.publish(m, segmentsFor(m, 1));
  });
  publisher.join();
  for (auto& t : fetchers) t.join();

  std::vector<std::size_t> all;
  for (const auto& part : taken) all.insert(all.end(), part.begin(), part.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kMaps);
  for (std::size_t m = 0; m < kMaps; ++m) EXPECT_EQ(all[m], m);
}

TEST(ShuffleServerTest, RefetchReturnsPristineCopy) {
  ShuffleServer server(2, 2, nullptr, /*retainSegments=*/true);
  server.publish(0, segmentsFor(0, 2));
  server.publish(1, segmentsFor(1, 2));

  auto fetched = server.fetch(1);
  ASSERT_TRUE(fetched.has_value());
  fetched->segment[0] ^= 0xFF;  // simulate a corrupted transfer
  const Bytes fresh = server.refetch(fetched->map_index, 1);
  EXPECT_EQ(fresh, segmentFor(fetched->map_index, 1));
  // Refetch does not consume: a second refetch still works.
  EXPECT_EQ(server.refetch(fetched->map_index, 1), fresh);
}

TEST(ShuffleServerTest, RefetchWithoutRetentionIsALogicError) {
  ShuffleServer server(1, 1);
  server.publish(0, segmentsFor(0, 1));
  EXPECT_THROW(server.refetch(0, 0), std::logic_error);
}

TEST(ShuffleServerTest, RefetchOfUnpublishedMapIsALogicError) {
  ShuffleServer server(2, 1, nullptr, /*retainSegments=*/true);
  server.publish(0, segmentsFor(0, 1));
  EXPECT_THROW(server.refetch(1, 0), std::logic_error);
}

TEST(ShuffleServerTest, AbortWakesBlockedFetchers) {
  ShuffleServer server(3, 2);
  std::atomic<int> threw{0};
  std::vector<std::thread> fetchers;
  for (int r = 0; r < 2; ++r) {
    fetchers.emplace_back([&, r] {
      try {
        server.fetch(r);
      } catch (const std::runtime_error&) {
        threw.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.abort();
  for (auto& t : fetchers) t.join();
  EXPECT_EQ(threw.load(), 2);
  // Post-abort fetches fail fast instead of hanging.
  EXPECT_THROW(server.fetch(0), std::runtime_error);
}

TEST(ShuffleServerTest, FetchAfterAllPublishesNeverBlocks) {
  ShuffleServer server(2, 1);
  server.publish(0, segmentsFor(0, 1));
  server.publish(1, segmentsFor(1, 1));
  EXPECT_TRUE(server.fetch(0).has_value());
  EXPECT_TRUE(server.fetch(0).has_value());
  EXPECT_FALSE(server.fetch(0).has_value());
}

TEST(ShuffleServerTest, EmptySegmentsFlowThrough) {
  // A reducer with no records from some map still gets that map's (empty)
  // segment — arrival accounting must not special-case zero bytes.
  ShuffleServer server(1, 2);
  std::vector<Bytes> segments(2);  // both empty
  server.publish(0, std::move(segments));
  const auto got = server.fetch(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->segment.empty());
}

// Regression for the lock-discipline pass (PR 5): publish() used to read the
// reducer-queue table before taking the lock when validating the segment
// count. The validation must still reject mismatches now that it runs under
// the lock, including while other publishers are racing.
TEST(ShuffleServerTest, WrongSegmentCountIsRejectedUnderConcurrentPublishes) {
  ShuffleServer server(4, 2);
  std::vector<std::thread> publishers;
  for (std::size_t m = 0; m < 3; ++m) {
    publishers.emplace_back([&, m] { server.publish(m, segmentsFor(m, 2)); });
  }
  for (auto& t : publishers) t.join();
  EXPECT_THROW(server.publish(3, segmentsFor(3, 5)), std::exception);  // 5 != 2 reducers
  server.publish(3, segmentsFor(3, 2));  // the failed publish consumed no slot
}

// Regression for the lock-discipline pass: the overlap-accounting stats must
// stay coherent while publishes and fetches race — every read goes through
// the locked accessors (TSan verifies at runtime what -Wthread-safety proves
// at compile time; this test carries the tsan label via its binary).
TEST(ShuffleServerTest, StatsReadersRaceWithPublishersAndFetchers) {
  constexpr std::size_t kMaps = 16;
  ShuffleServer server(kMaps, 1);
  std::atomic<bool> done{false};
  std::thread statsReader([&] {
    u64 lastSeenPublish = 0;
    while (!done.load()) {
      const u64 p = server.firstPublishUs();
      // firstPublishUs is written once; once nonzero it never changes.
      if (lastSeenPublish != 0) EXPECT_EQ(p, lastSeenPublish);
      if (p != 0) lastSeenPublish = p;
      server.lastFetchUs();
      std::this_thread::yield();
    }
  });
  std::thread publisher([&] {
    for (std::size_t m = 0; m < kMaps; ++m) server.publish(m, segmentsFor(m, 1));
  });
  std::size_t fetchedCount = 0;
  while (server.fetch(0).has_value()) ++fetchedCount;
  publisher.join();
  done.store(true);
  statsReader.join();
  EXPECT_EQ(fetchedCount, kMaps);
  EXPECT_GE(server.lastFetchUs(), server.firstPublishUs());
  EXPECT_NE(server.firstPublishUs(), 0u);
}

}  // namespace
}  // namespace scishuffle::hadoop
