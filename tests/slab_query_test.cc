#include <gtest/gtest.h>

#include <tuple>

#include "grid/dataset.h"
#include "hadoop/runtime.h"
#include "scikey/slab_query.h"

namespace scishuffle::scikey {
namespace {

grid::Variable makeInput(std::vector<i64> dims, u32 seed) {
  grid::Variable v("field", grid::DataType::kInt32, grid::Shape(std::move(dims)));
  grid::gen::fillRandomInt(v, seed, 500);
  return v;
}

TEST(KeptDimsTest, ComplementsReducedSet) {
  EXPECT_EQ(keptDims(3, {1}), (std::vector<int>{0, 2}));
  EXPECT_EQ(keptDims(4, {0, 3}), (std::vector<int>{1, 2}));
  EXPECT_EQ(keptDims(2, {1}), (std::vector<int>{0}));
}

// (reduced dims key, mappers, reducers, op, combiner)
using SlabCase = std::tuple<int, int, int, CellOp, bool>;

std::vector<int> reducedDimsFor(int which) {
  switch (which) {
    case 0:
      return {2};     // average over z
    case 1:
      return {0};     // reduce the split dimension itself
    default:
      return {0, 2};  // keep only the middle dimension
  }
}

class SlabEquivalence : public ::testing::TestWithParam<SlabCase> {};

TEST_P(SlabEquivalence, BothConfigurationsMatchOracle) {
  const auto& [dimsKey, mappers, reducers, op, combiner] = GetParam();
  const grid::Variable input = makeInput({12, 10, 14}, 5);

  SlabQueryConfig config;
  config.reduced_dims = reducedDimsFor(dimsKey);
  config.op = op;
  config.num_mappers = mappers;
  config.use_combiner = combiner;

  hadoop::JobConfig base;
  base.num_reducers = reducers;

  const auto oracle = slabOracle(input, config);
  const int outRank = static_cast<int>(keptDims(3, config.reduced_dims).size());

  PreparedJob simple = buildSimpleSlabJob(input, config, base);
  const auto simpleResult = hadoop::runJob(simple.job, simple.map_tasks, simple.reduce);
  EXPECT_EQ(flattenSimpleOutputs(simpleResult, outRank), oracle);

  PreparedJob agg = buildAggregateSlabJob(input, config, base);
  const auto aggResult = hadoop::runJob(agg.job, agg.map_tasks, agg.reduce);
  EXPECT_EQ(flattenAggregateOutputs(aggResult, *agg.space), oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SlabEquivalence,
    ::testing::Values(SlabCase{0, 1, 1, CellOp::kSum, false},
                      SlabCase{0, 4, 3, CellOp::kSum, true},
                      SlabCase{0, 4, 3, CellOp::kMean, false},
                      SlabCase{0, 3, 2, CellOp::kMedian, false},
                      SlabCase{1, 4, 3, CellOp::kSum, true},
                      SlabCase{2, 5, 4, CellOp::kSum, false}),
    [](const auto& info) {
      const CellOp op = std::get<3>(info.param);
      const char* opName = op == CellOp::kSum ? "sum" : (op == CellOp::kMean ? "mean" : "median");
      return "d" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param)) + "r" +
             std::to_string(std::get<2>(info.param)) + "_" + opName +
             (std::get<4>(info.param) ? "_comb" : "");
    });

TEST(SlabQueryTest, AggregateKeysNeedNoOverlapSplitting) {
  // Projection is many-to-one but never overlapping: the grouper should see
  // zero overlap splits (unlike sliding windows).
  const grid::Variable input = makeInput({16, 16, 8}, 3);
  SlabQueryConfig config;
  config.reduced_dims = {2};
  config.op = CellOp::kSum;
  hadoop::JobConfig base;
  base.num_reducers = 3;
  PreparedJob job = buildAggregateSlabJob(input, config, base);
  const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
  EXPECT_EQ(result.counters.get(hadoop::counter::kKeySplitsOverlap), 0u);
}

TEST(SlabQueryTest, CombinerCollapsesLayersBeforeTheShuffle) {
  const grid::Variable input = makeInput({16, 16, 16}, 9);
  SlabQueryConfig config;
  config.reduced_dims = {2};
  config.op = CellOp::kSum;
  hadoop::JobConfig base;
  base.num_reducers = 2;

  PreparedJob plain = buildAggregateSlabJob(input, config, base);
  const auto plainResult = hadoop::runJob(plain.job, plain.map_tasks, plain.reduce);
  config.use_combiner = true;
  PreparedJob combined = buildAggregateSlabJob(input, config, base);
  const auto combinedResult = hadoop::runJob(combined.job, combined.map_tasks, combined.reduce);

  // Each (x,y) receives one value per z (16 layers); the combiner collapses
  // them to one partial sum per mapper, shrinking materialized data a lot.
  EXPECT_LT(combinedResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes) * 4,
            plainResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes));
  EXPECT_EQ(flattenAggregateOutputs(combinedResult, *combined.space),
            flattenAggregateOutputs(plainResult, *plain.space));
}

TEST(SlabQueryTest, InvalidConfigsAreRejected) {
  const grid::Variable input = makeInput({4, 4}, 1);
  SlabQueryConfig config;
  hadoop::JobConfig base;
  config.reduced_dims = {};
  EXPECT_THROW(buildSimpleSlabJob(input, config, base), std::logic_error);
  config.reduced_dims = {0, 1};
  EXPECT_THROW(buildSimpleSlabJob(input, config, base), std::logic_error);
  config.reduced_dims = {5};
  EXPECT_THROW(buildSimpleSlabJob(input, config, base), std::logic_error);
  config.reduced_dims = {1};
  config.op = CellOp::kMedian;
  config.use_combiner = true;
  EXPECT_THROW(buildAggregateSlabJob(input, config, base), std::logic_error);
}

}  // namespace
}  // namespace scishuffle::scikey
