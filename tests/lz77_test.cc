#include <gtest/gtest.h>

#include "compress/lz77.h"
#include "testing_support.h"

namespace scishuffle::lz77 {
namespace {

void expectRoundTrip(const Bytes& data) {
  const auto tokens = parse(data);
  for (const auto& t : tokens) {
    if (t.length > 0) {
      EXPECT_GE(t.length, static_cast<u32>(kMinMatch));
      EXPECT_LE(t.length, static_cast<u32>(kMaxMatch));
      EXPECT_GE(t.distance, 1u);
      EXPECT_LE(t.distance, kWindowSize);
    }
  }
  EXPECT_EQ(expand(tokens), data);
}

TEST(Lz77Test, Empty) { expectRoundTrip({}); }

TEST(Lz77Test, ShortInputs) {
  expectRoundTrip({1});
  expectRoundTrip({1, 2});
  expectRoundTrip({7, 7, 7});
}

TEST(Lz77Test, AllSameByteUsesLongMatches) {
  const Bytes data(10000, 42);
  const auto tokens = parse(data);
  EXPECT_EQ(expand(tokens), data);
  // One literal plus overlapping distance-1 matches: far fewer tokens than bytes.
  EXPECT_LT(tokens.size(), 100u);
}

TEST(Lz77Test, PeriodicDataFindsThePeriod) {
  Bytes data;
  for (int i = 0; i < 5000; ++i) data.push_back(static_cast<u8>(i % 12));
  const auto tokens = parse(data);
  EXPECT_EQ(expand(tokens), data);
  EXPECT_LT(tokens.size(), 60u);
}

TEST(Lz77Test, MatchesNeverCrossWindow) {
  // Distant repeats beyond 32 KiB must be re-emitted, not referenced.
  Bytes data = testing::randomBytes(1000, 11);
  Bytes far(kWindowSize + 100, 0);
  Bytes all = data;
  all.insert(all.end(), far.begin(), far.end());
  all.insert(all.end(), data.begin(), data.end());
  expectRoundTrip(all);
}

class Lz77Property : public ::testing::TestWithParam<u32> {};

TEST_P(Lz77Property, RoundTripsRandomAndRunny) {
  expectRoundTrip(testing::randomBytes(20000 + GetParam() * 997, GetParam()));
  expectRoundTrip(testing::runnyBytes(20000 + GetParam() * 997, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77Property, ::testing::Range(0u, 10u));

TEST(Lz77Test, GridWalkRoundTrips) {
  expectRoundTrip(testing::gridWalkTriples(12, 12, 12));
}

TEST(Lz77Test, StaleChainSlotsTerminate) {
  // Inputs much longer than the window recycle prev[] slots; a chain walk
  // that followed a recycled slot could loop or reference future positions.
  // Repeating data with a period sharing the window's modulus is the worst
  // case: every slot gets rewritten by a position with the same hash.
  Bytes data;
  data.reserve(3 * kWindowSize);
  for (std::size_t i = 0; i < 3 * kWindowSize; ++i) {
    data.push_back(static_cast<u8>((i % 64) * 3));
  }
  ParseOptions options;
  options.max_chain_length = 1 << 20;  // would hang if a chain cycled
  expectRoundTrip(data);
  const auto tokens = parse(data, options);
  EXPECT_EQ(expand(tokens), data);
}

TEST(Lz77Test, GoodMatchShortensChainWalkWithoutBreakingRoundTrip) {
  const Bytes data = testing::runnyBytes(60000, 3);
  ParseOptions eager;
  eager.good_match = 8;  // stop at the first decent match
  ParseOptions thorough;
  thorough.good_match = kMaxMatch;
  const auto eagerTokens = parse(data, eager);
  const auto thoroughTokens = parse(data, thorough);
  EXPECT_EQ(expand(eagerTokens), data);
  EXPECT_EQ(expand(thoroughTokens), data);
  // The thorough parse may find longer matches but never a worse parse.
  EXPECT_LE(thoroughTokens.size(), eagerTokens.size());
}

TEST(Lz77Test, ForLevelLaddersAreMonotonic) {
  for (int level = 1; level <= 9; ++level) {
    const ParseOptions options = ParseOptions::forLevel(level);
    EXPECT_GE(options.max_chain_length, 4);
    EXPECT_GE(options.good_match, 8);
    EXPECT_LE(options.good_match, kMaxMatch);
    if (level > 1) {
      EXPECT_GE(options.max_chain_length, ParseOptions::forLevel(level - 1).max_chain_length);
    }
  }
  EXPECT_THROW(ParseOptions::forLevel(0), std::logic_error);
  EXPECT_THROW(ParseOptions::forLevel(10), std::logic_error);
}

TEST(Lz77Test, AppendingOverloadMatchesReturningParse) {
  const Bytes data = testing::gridWalkTriples(10, 10, 10);
  const auto direct = parse(data);
  std::vector<Token> appended;
  parse(data, ParseOptions{}, appended);
  ASSERT_EQ(direct.size(), appended.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].length, appended[i].length);
    EXPECT_EQ(direct[i].distance, appended[i].distance);
    EXPECT_EQ(direct[i].literal, appended[i].literal);
  }
}

}  // namespace
}  // namespace scishuffle::lz77
