#include <gtest/gtest.h>

#include "compress/lz77.h"
#include "testing_support.h"

namespace scishuffle::lz77 {
namespace {

void expectRoundTrip(const Bytes& data) {
  const auto tokens = parse(data);
  for (const auto& t : tokens) {
    if (t.length > 0) {
      EXPECT_GE(t.length, static_cast<u32>(kMinMatch));
      EXPECT_LE(t.length, static_cast<u32>(kMaxMatch));
      EXPECT_GE(t.distance, 1u);
      EXPECT_LE(t.distance, kWindowSize);
    }
  }
  EXPECT_EQ(expand(tokens), data);
}

TEST(Lz77Test, Empty) { expectRoundTrip({}); }

TEST(Lz77Test, ShortInputs) {
  expectRoundTrip({1});
  expectRoundTrip({1, 2});
  expectRoundTrip({7, 7, 7});
}

TEST(Lz77Test, AllSameByteUsesLongMatches) {
  const Bytes data(10000, 42);
  const auto tokens = parse(data);
  EXPECT_EQ(expand(tokens), data);
  // One literal plus overlapping distance-1 matches: far fewer tokens than bytes.
  EXPECT_LT(tokens.size(), 100u);
}

TEST(Lz77Test, PeriodicDataFindsThePeriod) {
  Bytes data;
  for (int i = 0; i < 5000; ++i) data.push_back(static_cast<u8>(i % 12));
  const auto tokens = parse(data);
  EXPECT_EQ(expand(tokens), data);
  EXPECT_LT(tokens.size(), 60u);
}

TEST(Lz77Test, MatchesNeverCrossWindow) {
  // Distant repeats beyond 32 KiB must be re-emitted, not referenced.
  Bytes data = testing::randomBytes(1000, 11);
  Bytes far(kWindowSize + 100, 0);
  Bytes all = data;
  all.insert(all.end(), far.begin(), far.end());
  all.insert(all.end(), data.begin(), data.end());
  expectRoundTrip(all);
}

class Lz77Property : public ::testing::TestWithParam<u32> {};

TEST_P(Lz77Property, RoundTripsRandomAndRunny) {
  expectRoundTrip(testing::randomBytes(20000 + GetParam() * 997, GetParam()));
  expectRoundTrip(testing::runnyBytes(20000 + GetParam() * 997, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lz77Property, ::testing::Range(0u, 10u));

TEST(Lz77Test, GridWalkRoundTrips) {
  expectRoundTrip(testing::gridWalkTriples(12, 12, 12));
}

}  // namespace
}  // namespace scishuffle::lz77
