#include <gtest/gtest.h>

#include "compress/deflate.h"
#include "hadoop/ifile.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

TEST(IFileTest, EmptyFileIsJustTheTrailer) {
  IFileWriter writer(nullptr);
  const Bytes file = writer.close();
  // Two -1 vints + 4-byte CRC.
  EXPECT_EQ(file.size(), kIFileTrailerSize);
  IFileReader reader(file, nullptr);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(IFileTest, PerRecordOverheadMatchesThePaperArithmetic) {
  // §I reconstruction: key 20 bytes + value 4 bytes + 2 bytes framing = 26
  // bytes per record; 10^6 records + 6-byte trailer = 26,000,006 bytes.
  EXPECT_EQ(ifileRecordOverhead(20, 4), 2u);

  IFileWriter writer(nullptr);
  const Bytes key(20, 0xAB);
  const Bytes value(4, 0xCD);
  const int records = 1000;
  for (int i = 0; i < records; ++i) writer.append(key, value);
  const Bytes file = writer.close();
  EXPECT_EQ(file.size(), static_cast<std::size_t>(records) * 26 + 6);
}

TEST(IFileTest, NamedKeyOverheadMatchesIntro) {
  // Key with Text("windspeed1") = 11 + 16 coord bytes = 27; record = 33.
  IFileWriter writer(nullptr);
  const Bytes key(27, 1);
  const Bytes value(4, 2);
  writer.append(key, value);
  const Bytes file = writer.close();
  EXPECT_EQ(file.size(), 33u + 6u);
}

TEST(IFileTest, RoundTripsRecords) {
  IFileWriter writer(nullptr);
  std::vector<KeyValue> records;
  for (u32 i = 0; i < 500; ++i) {
    KeyValue kv{testing::randomBytes(i % 40, i), testing::randomBytes((i * 7) % 100, i + 1)};
    writer.append(kv.key, kv.value);
    records.push_back(std::move(kv));
  }
  EXPECT_EQ(writer.records(), 500u);
  const Bytes file = writer.close();

  IFileReader reader(file, nullptr);
  for (const auto& expected : records) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // stable after EOF
}

TEST(IFileTest, CompressedRoundTrip) {
  const DeflateCodec codec;
  IFileWriter writer(&codec);
  const Bytes key(20, 7);
  for (int i = 0; i < 2000; ++i) writer.append(key, Bytes{static_cast<u8>(i), 0, 0, 0});
  const Bytes file = writer.close();
  EXPECT_LT(file.size(), writer.rawBytes() / 3);  // repetitive keys compress

  IFileReader reader(file, &codec);
  int count = 0;
  while (reader.next()) ++count;
  EXPECT_EQ(count, 2000);
}

TEST(IFileTest, ChecksumDetectsCorruption) {
  IFileWriter writer(nullptr);
  writer.append(Bytes{1, 2, 3}, Bytes{4});
  Bytes file = writer.close();
  file[2] ^= 0x80;
  EXPECT_THROW(IFileReader(file, nullptr), FormatError);
}

TEST(IFileTest, AppendAfterCloseIsALogicError) {
  IFileWriter writer(nullptr);
  (void)writer.close();
  EXPECT_THROW(writer.append(Bytes{1}, Bytes{2}), std::logic_error);
}

}  // namespace
}  // namespace scishuffle::hadoop
