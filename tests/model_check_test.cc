// Deterministic schedule exploration (ctest label: modelcheck). Only built
// when -DSCISHUFFLE_MODEL_CHECK=ON routes io/annotations.h and
// scishuffle::Thread through the cooperative scheduler; tests/CMakeLists.txt
// gates registration on the same flag.
//
// The harness tests come first — a seeded racy struct proves the explorer
// finds schedule-dependent assertion failures and that a printed seed
// replays the exact failing interleaving. Then the real subsystems: the
// shuffle server's publish/fetch/teardown under bounded-exhaustive DFS, the
// job service's two shutdown modes, and a 500-schedule PCT soak of the
// governor-squeeze control loop.
#include <gtest/gtest.h>

#ifndef SCISHUFFLE_MODEL_CHECK

TEST(ModelCheckTest, RequiresModelCheckBuild) {
  GTEST_SKIP() << "built without SCISHUFFLE_MODEL_CHECK";
}

#else  // SCISHUFFLE_MODEL_CHECK

#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "hadoop/shuffle.h"
#include "io/annotations.h"
#include "io/thread.h"
#include "obs/sampler.h"
#include "service/governor.h"
#include "service/job_service.h"
#include "testing/schedule.h"

namespace scishuffle {
namespace {

using testing::ExploreOptions;
using testing::ExploreResult;
using testing::explore;
using testing::replaySeed;

// ---------------------------------------------------------------------------
// Harness: the explorer itself.

/// Deliberately racy claim: the decision ("nobody claimed yet") and the
/// commit happen under two separate critical sections, so a schedule that
/// interleaves two claimants between them double-claims. This is the classic
/// check-then-act race, invisible to any single run that happens to
/// serialize — exactly what the explorer exists to find.
struct RacyOnce {
  Mutex mu;  // test-local: unranked
  bool claimed = false;
  int winners = 0;

  void claim() {
    bool mine = false;
    {
      MutexLock lock(mu);
      mine = !claimed;
    }
    if (mine) {
      MutexLock lock(mu);
      claimed = true;
      ++winners;
    }
  }
};

void racyBody() {
  RacyOnce once;
  Thread a([&once] { once.claim(); });
  Thread b([&once] { once.claim(); });
  a.join();
  b.join();
  if (once.winners != 1) {
    throw std::logic_error("double claim: winners=" + std::to_string(once.winners));
  }
}

TEST(ModelCheckTest, ExhaustiveSearchFindsTheRace) {
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 5000;
  const ExploreResult result = explore(racyBody, opts);
  ASSERT_TRUE(result.failed) << "exhaustive DFS missed a schedule-dependent bug ("
                             << result.schedules_run << " schedules)";
  EXPECT_GE(result.failing_schedule, 0);
  EXPECT_NE(result.failure.find("double claim"), std::string::npos) << result.failure;
}

TEST(ModelCheckTest, FailingSeedReplaysDeterministically) {
  ExploreOptions opts;
  opts.max_schedules = 500;
  opts.seed = 7;
  const ExploreResult result = explore(racyBody, opts);
  ASSERT_TRUE(result.failed) << "randomized explorer missed the race in "
                             << result.schedules_run << " schedules";
  // The acceptance contract: the printed seed reproduces the failure, every
  // time, with the identical report.
  const std::string first = replaySeed(racyBody, result.failing_seed, opts);
  const std::string second = replaySeed(racyBody, result.failing_seed, opts);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("double claim"), std::string::npos) << first;
}

TEST(ModelCheckTest, CorrectProgramExhaustsItsScheduleSpace) {
  // The fixed version of RacyOnce: decision and commit share one critical
  // section. DFS must enumerate the whole (small) tree without a failure.
  auto body = [] {
    Mutex mu;
    bool claimed = false;
    int winners = 0;
    auto claim = [&] {
      MutexLock lock(mu);
      if (!claimed) {
        claimed = true;
        ++winners;
      }
    };
    Thread a(claim);
    Thread b(claim);
    a.join();
    b.join();
    if (winners != 1) throw std::logic_error("double claim");
  };
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 20000;
  const ExploreResult result = explore(body, opts);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted) << "space not exhausted in " << result.schedules_run
                                << " schedules";
  EXPECT_GT(result.schedules_run, 1);
}

TEST(ModelCheckTest, DeadlockIsDetectedNotHung) {
  // Classic AB/BA inversion on *unranked* (test-local) mutexes — exempt from
  // the lock-order checker's rank rule, so only the scheduler can see it.
  // The explorer must find the interleaving where both threads hold one lock
  // and report a deadlock instead of hanging the test binary.
  auto body = [] {
    Mutex a;
    Mutex b;
    Thread t1([&] {
      MutexLock la(a);
      MutexLock lb(b);
    });
    Thread t2([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
    t1.join();
    t2.join();
  };
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 5000;
  const ExploreResult result = explore(body, opts);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos) << result.failure;
}

TEST(ModelCheckTest, LostWakeupIsFound) {
  // Signal-before-wait: the waiter samples the flag, drops the lock, and
  // only then decides to wait. A schedule where the signaler sets the flag
  // and notifies inside that window sends the notify to nobody and the
  // waiter parks forever; the scheduler reports the hang as a deadlock and
  // the explorer pins the interleaving.
  auto body = [] {
    Mutex mu;
    CondVar cv;
    bool ready = false;
    Thread waiter([&] {
      bool sawReady = false;
      {
        MutexLock lock(mu);
        sawReady = ready;
      }
      if (!sawReady) {  // BUG: decision made outside the wait's critical section
        MutexLock lock(mu);
        cv.wait(lock);
      }
    });
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
    waiter.join();
  };
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 5000;
  const ExploreResult result = explore(body, opts);
  ASSERT_TRUE(result.failed);
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos) << result.failure;
}

// ---------------------------------------------------------------------------
// Subsystems under exploration.

Bytes bytesOf(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

TEST(ModelCheckShuffleTest, PublishFetchTeardownExhaustive) {
  // Two concurrent publishers race one fetching consumer; every schedule
  // must deliver both segments exactly once, then signal end-of-stream. The
  // server is then destroyed with a third, unfetched publish still queued —
  // the teardown drain path — under every interleaving DFS can reach.
  auto body = [] {
    hadoop::ShuffleServer server(/*numMaps=*/3, /*numReducers=*/1);
    Thread p0([&server] { server.publish(0, {bytesOf("alpha")}); });
    Thread p1([&server] { server.publish(1, {bytesOf("beta")}); });
    std::multiset<std::string> got;
    for (int i = 0; i < 2; ++i) {
      std::optional<hadoop::ShuffleServer::Fetched> f = server.fetch(0);
      if (!f.has_value()) throw std::logic_error("premature end of stream");
      got.insert(std::string(f->segment.begin(), f->segment.end()));
    }
    p0.join();
    p1.join();
    if (got != std::multiset<std::string>{"alpha", "beta"}) {
      throw std::logic_error("fetch lost or duplicated a segment");
    }
    // Map 2 publishes but is never fetched: ~ShuffleServer must drain it.
    server.publish(2, {bytesOf("gamma")});
  };
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 4000;
  const ExploreResult result = explore(body, opts);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_GT(result.schedules_run, 1);
}

TEST(ModelCheckShuffleTest, AbortWakesBlockedFetcher) {
  // A fetcher parked on an empty queue races abort(); every schedule must
  // end with the fetcher thrown out (or observing the abort on entry) —
  // never a hang, never a silent nullopt.
  auto body = [] {
    hadoop::ShuffleServer server(/*numMaps=*/1, /*numReducers=*/1);
    bool threw = false;
    Thread fetcher([&server, &threw] {
      try {
        (void)server.fetch(0);
      } catch (const std::runtime_error&) {
        threw = true;
      }
    });
    server.abort();
    fetcher.join();
    if (!threw) throw std::logic_error("aborted fetch did not throw");
  };
  ExploreOptions opts;
  opts.exhaustive = true;
  opts.max_schedules = 2000;
  const ExploreResult result = explore(body, opts);
  EXPECT_FALSE(result.failed) << result.failure;
}

service::JobSpec tinyJob(const std::string& name) {
  service::JobSpec spec;
  spec.name = name;
  spec.priority = service::Priority::kNormal;
  spec.config.num_reducers = 1;
  spec.config.map_slots = 1;
  spec.config.reduce_slots = 1;
  spec.config.codec_threads = 1;
  spec.config.intermediate_codec = "null";
  spec.map_tasks.push_back(hadoop::MapTask{[](const hadoop::EmitFn& emit) {
    const Bytes k = bytesOf("k");
    const Bytes v = bytesOf("v");
    emit(k, v);
  }});
  spec.reduce = [](const Bytes& key, std::vector<Bytes>& values, const hadoop::EmitFn& emit) {
    emit(key, values.front());
  };
  return spec;
}

void runServiceShutdownBody(service::JobService::Shutdown mode) {
  service::ServiceConfig cfg;
  cfg.max_concurrent_jobs = 1;
  cfg.queue_capacity = 4;
  cfg.codec_threads = 1;
  service::JobService service(cfg);
  const service::SubmitResult first = service.submit(tinyJob("mc-a"));
  const service::SubmitResult second = service.submit(tinyJob("mc-b"));
  if (!first.accepted || !second.accepted) throw std::logic_error("admission rejected");
  service.shutdown(mode);
  for (u64 id : {first.id, second.id}) {
    const service::JobStatus status = service.wait(id);
    if (!service::isTerminal(status.state)) throw std::logic_error("non-terminal after shutdown");
    if (mode == service::JobService::Shutdown::kDrainQueued) {
      // Drain runs everything already admitted to completion.
      if (status.state != service::JobState::kDone) {
        throw std::logic_error(std::string("drained job ended ") +
                               service::jobStateName(status.state));
      }
    } else {
      // Cancel mode: a job is either already running (finishes kDone) or
      // still queued (must flip to kCancelled) — nothing else.
      if (status.state != service::JobState::kDone &&
          status.state != service::JobState::kCancelled) {
        throw std::logic_error(std::string("cancelled-queue job ended ") +
                               service::jobStateName(status.state));
      }
    }
  }
}

TEST(ModelCheckServiceTest, ShutdownDrainQueuedUnderExploration) {
  ExploreOptions opts;
  opts.max_schedules = 12;
  opts.seed = 11;
  const ExploreResult result = explore(
      [] { runServiceShutdownBody(service::JobService::Shutdown::kDrainQueued); }, opts);
  EXPECT_FALSE(result.failed) << "seed " << result.failing_seed << ": " << result.failure;
  EXPECT_EQ(result.schedules_run, 12);
}

TEST(ModelCheckServiceTest, ShutdownCancelQueuedUnderExploration) {
  ExploreOptions opts;
  opts.max_schedules = 12;
  opts.seed = 23;
  const ExploreResult result = explore(
      [] { runServiceShutdownBody(service::JobService::Shutdown::kCancelQueued); }, opts);
  EXPECT_FALSE(result.failed) << "seed " << result.failing_seed << ": " << result.failure;
}

TEST(ModelCheckServiceTest, GovernorSqueezePctSoak) {
  // 500 seeded PCT schedules of the squeeze control loop: two publishers
  // race the governor's attach/tick/squeeze/detach path with a budget small
  // enough that the process's real RSS sits near the soft watermark, so the
  // tick's setPendingBytesLimit squeeze (governor.mu_ -> server.mutex_)
  // interleaves with publish/fetch under server.mutex_. Under model check
  // the governor's timed wait fires only as deadlock rescue, so ticks land
  // at schedule-chosen points instead of on a wall clock.
  auto body = [] {
    obs::GaugeRegistry registry;
    service::MemoryGovernor::Config gcfg;
    gcfg.budget_bytes = 64ull << 20;
    gcfg.interval_ms = 1;
    gcfg.job_reserve_bytes = 16ull << 20;
    gcfg.min_pending_limit_bytes = 1ull << 10;
    service::MemoryGovernor governor(gcfg, &registry, /*stream=*/nullptr);
    hadoop::ShuffleServer server(/*numMaps=*/2, /*numReducers=*/1);
    governor.attach(server);
    governor.start();
    Thread p0([&server] { server.publish(0, {bytesOf("squeezed-0")}); });
    Thread p1([&server] { server.publish(1, {bytesOf("squeezed-1")}); });
    for (int i = 0; i < 2; ++i) {
      std::optional<hadoop::ShuffleServer::Fetched> f = server.fetch(0);
      if (!f.has_value()) throw std::logic_error("segment lost under squeeze");
    }
    p0.join();
    p1.join();
    governor.stop();
    governor.detach(server);
    // stop() takes a final sample, so every schedule observes >= 1 tick, and
    // a throttled governor must never report admission headroom.
    if (governor.sampleCount() == 0) throw std::logic_error("governor never sampled");
    if (governor.throttled() && governor.admissionOk()) {
      throw std::logic_error("throttled governor admitted a job");
    }
  };
  ExploreOptions opts;
  opts.max_schedules = 500;
  opts.seed = 1234;
  const ExploreResult result = explore(body, opts);
  EXPECT_FALSE(result.failed) << "seed " << result.failing_seed << ": " << result.failure;
  EXPECT_EQ(result.schedules_run, 500);
}

}  // namespace
}  // namespace scishuffle

#endif  // SCISHUFFLE_MODEL_CHECK
