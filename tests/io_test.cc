#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "io/bitio.h"
#include "io/crc32.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "io/varint.h"
#include "testing_support.h"

namespace scishuffle {
namespace {

TEST(VarintTest, SingleByteRange) {
  // Hadoop's WritableUtils stores [-112, 127] in one byte. This is what makes
  // an IFile record's framing cost exactly 2 bytes for small keys/values.
  for (i64 v = -112; v <= 127; ++v) {
    Bytes buf;
    MemorySink sink(buf);
    writeVLong(sink, v);
    EXPECT_EQ(buf.size(), 1u) << v;
    MemorySource src(buf);
    EXPECT_EQ(readVLong(src), v);
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<i64> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  const i64 v = GetParam();
  Bytes buf;
  MemorySink sink(buf);
  writeVLong(sink, v);
  EXPECT_EQ(buf.size(), vlongSize(v));
  MemorySource src(buf);
  EXPECT_EQ(readVLong(src), v);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values<i64>(0, 1, -1, 127, 128, -112, -113, 255, 256, -256,
                                                65535, 65536, -65536, (i64{1} << 31) - 1,
                                                i64{1} << 31, -(i64{1} << 31), (i64{1} << 47),
                                                std::numeric_limits<i64>::max(),
                                                std::numeric_limits<i64>::min()));

TEST(VarintTest, NegativeFirstByteDetection) {
  for (const i64 v : {i64{-1}, i64{-112}, i64{-113}, i64{-100000}}) {
    Bytes buf;
    MemorySink sink(buf);
    writeVLong(sink, v);
    EXPECT_TRUE(vlongFirstByteIsNegative(buf[0])) << v;
  }
  for (const i64 v : {i64{0}, i64{127}, i64{128}, i64{100000}}) {
    Bytes buf;
    MemorySink sink(buf);
    writeVLong(sink, v);
    EXPECT_FALSE(vlongFirstByteIsNegative(buf[0])) << v;
  }
}

TEST(VarintTest, TruncatedInputThrows) {
  Bytes buf;
  MemorySink sink(buf);
  writeVLong(sink, 1234567);
  buf.pop_back();
  MemorySource src(buf);
  EXPECT_THROW(readVLong(src), FormatError);
}

TEST(PrimitivesTest, BigEndianLayout) {
  Bytes buf;
  MemorySink sink(buf);
  writeU32(sink, 0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(PrimitivesTest, RoundTrips) {
  Bytes buf;
  MemorySink sink(buf);
  writeU16(sink, 0xBEEF);
  writeI32(sink, -42);
  writeI64(sink, -1234567890123LL);
  writeF32(sink, 3.25f);
  writeF64(sink, -2.5e300);
  writeText(sink, "windspeed1");
  MemorySource src(buf);
  EXPECT_EQ(readU16(src), 0xBEEF);
  EXPECT_EQ(readI32(src), -42);
  EXPECT_EQ(readI64(src), -1234567890123LL);
  EXPECT_EQ(readF32(src), 3.25f);
  EXPECT_EQ(readF64(src), -2.5e300);
  EXPECT_EQ(readText(src), "windspeed1");
  EXPECT_EQ(src.remaining(), 0u);
}

TEST(PrimitivesTest, TextSizeMatchesIntroKeyArithmetic) {
  // §I: key with Text("windspeed1") is 11 bytes of name; with an int index
  // it is 4 bytes — the 7-byte difference behind 33,000,006 vs 26,000,006.
  EXPECT_EQ(textSize("windspeed1"), 11u);
}

TEST(Crc32Test, KnownVector) {
  const std::string s = "123456789";
  EXPECT_EQ(crc32(ByteSpan(reinterpret_cast<const u8*>(s.data()), s.size())), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const Bytes data = testing::randomBytes(10000, 7);
  Crc32 crc;
  crc.update(ByteSpan(data).subspan(0, 1234));
  crc.update(ByteSpan(data).subspan(1234));
  EXPECT_EQ(crc.value(), crc32(data));
}

TEST(BitIoTest, RoundTripsMixedWidths) {
  Bytes buf;
  MemorySink sink(buf);
  BitWriter bw(sink);
  bw.writeBits(0b1, 1);
  bw.writeBits(0b1010, 4);
  bw.writeBits(0xDEAD, 16);
  bw.writeBits(0x0FFFFFFF, 28);
  bw.finish();
  MemorySource src(buf);
  BitReader br(src);
  EXPECT_EQ(br.readBits(1), 0b1u);
  EXPECT_EQ(br.readBits(4), 0b1010u);
  EXPECT_EQ(br.readBits(16), 0xDEADu);
  EXPECT_EQ(br.readBits(28), 0x0FFFFFFFu);
}

TEST(BitIoTest, MsbFirstCodesRoundTripBitByBit) {
  Bytes buf;
  MemorySink sink(buf);
  BitWriter bw(sink);
  bw.writeCodeMsbFirst(0b1011, 4);
  bw.finish();
  MemorySource src(buf);
  BitReader br(src);
  u32 code = 0;
  for (int i = 0; i < 4; ++i) code = (code << 1) | br.readBit();
  EXPECT_EQ(code, 0b1011u);
}

TEST(StreamsTest, FileRoundTrip) {
  const testing::TempDir dir;
  const auto path = dir.file("scishuffle_io_test.bin");
  const Bytes data = testing::randomBytes(100000, 3);
  {
    FileSink sink(path);
    sink.write(data);
  }
  FileSource source(path);
  EXPECT_EQ(source.readAll(), data);
}

TEST(StreamsTest, ConsumedTracksBytesHandedOut) {
  const Bytes data = testing::randomBytes(100, 4);
  MemorySource src(data);
  EXPECT_EQ(src.consumed(), 0u);
  Bytes out(30);
  src.readExact(MutableByteSpan(out.data(), out.size()));
  EXPECT_EQ(src.consumed(), 30u);
  src.readByte();
  EXPECT_EQ(src.consumed(), 31u);
  src.readAll();
  EXPECT_EQ(src.consumed(), 100u);
  // EOF reads don't advance.
  EXPECT_EQ(src.readByte(), -1);
  EXPECT_EQ(src.consumed(), 100u);
}

TEST(StreamsTest, CountingSinkCounts) {
  Bytes buf;
  MemorySink inner(buf);
  CountingSink counting(inner);
  counting.write(testing::randomBytes(123, 1));
  counting.write(testing::randomBytes(77, 2));
  EXPECT_EQ(counting.count(), 200u);
  EXPECT_EQ(buf.size(), 200u);
}

TEST(StreamsTest, ReadExactThrowsOnTruncation) {
  const Bytes data(10, 0);
  MemorySource src(data);
  Bytes out(11);
  EXPECT_THROW(src.readExact(MutableByteSpan(out.data(), out.size())), FormatError);
}

}  // namespace
}  // namespace scishuffle
