// End-to-end equivalence: the sliding-window query must produce identical
// per-cell results in every configuration — serial oracle, simple keys
// (with/without codecs), and aggregate keys (any curve, flush threshold,
// mapper count) — across every engine knob the paper's experiments turn.
#include <gtest/gtest.h>

#include <tuple>

#include "grid/dataset.h"
#include "hadoop/runtime.h"
#include "scikey/sliding_query.h"

namespace scishuffle::scikey {
namespace {

grid::Variable makeInput(i64 nx, i64 ny, u32 seed) {
  grid::Variable v("pressure", grid::DataType::kInt32, grid::Shape({nx, ny}));
  grid::gen::fillRandomInt(v, seed, 1000);
  return v;
}

// (mappers, reducers, curve, flush threshold, codec)
using AggCase = std::tuple<int, int, sfc::CurveKind, std::size_t, std::string>;

class AggregateEquivalence : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateEquivalence, MatchesOracle) {
  const auto& [mappers, reducers, curve, flushBytes, codec] = GetParam();
  const grid::Variable input = makeInput(24, 18, 42);

  SlidingQueryConfig config;
  config.num_mappers = mappers;
  config.curve = curve;
  config.flush_threshold_bytes = flushBytes;

  hadoop::JobConfig base;
  base.num_reducers = reducers;
  base.map_slots = 3;
  base.intermediate_codec = codec;

  PreparedJob job = buildAggregateSlidingJob(input, config, base);
  const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
  EXPECT_EQ(flattenAggregateOutputs(result, *job.space), slidingOracle(input, config));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AggregateEquivalence,
    ::testing::Values(AggCase{1, 1, sfc::CurveKind::kZOrder, 8u << 20, "null"},
                      AggCase{4, 3, sfc::CurveKind::kZOrder, 8u << 20, "null"},
                      AggCase{4, 3, sfc::CurveKind::kHilbert, 8u << 20, "null"},
                      AggCase{4, 3, sfc::CurveKind::kRowMajor, 8u << 20, "null"},
                      AggCase{3, 5, sfc::CurveKind::kZOrder, 4096, "null"},  // many flushes
                      AggCase{2, 2, sfc::CurveKind::kZOrder, 8u << 20, "gzipish"},
                      AggCase{5, 4, sfc::CurveKind::kHilbert, 2048, "transform+gzipish"}),
    [](const ::testing::TestParamInfo<AggCase>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "r" +
             std::to_string(std::get<1>(info.param)) + "_" +
             sfc::curveKindName(std::get<2>(info.param)) + "_f" +
             std::to_string(std::get<3>(info.param)) + "_" +
             (std::get<4>(info.param) == "null"
                  ? "plain"
                  : (std::get<4>(info.param) == "gzipish" ? "gz" : "tgz"));
    });

TEST(SimpleEquivalence, MatchesOracleWithAndWithoutCodec) {
  const grid::Variable input = makeInput(20, 20, 7);
  SlidingQueryConfig config;
  config.num_mappers = 3;
  for (const char* codec : {"null", "gzipish", "transform+gzipish"}) {
    hadoop::JobConfig base;
    base.num_reducers = 4;
    base.intermediate_codec = codec;
    PreparedJob job = buildSimpleSlidingJob(input, config, base);
    const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
    EXPECT_EQ(flattenSimpleOutputs(result, 2), slidingOracle(input, config)) << codec;
  }
}

TEST(SimpleVsAggregate, IdenticalResultsAndSmallerShuffle) {
  const grid::Variable input = makeInput(40, 40, 3);
  SlidingQueryConfig config;
  config.num_mappers = 4;

  hadoop::JobConfig base;
  base.num_reducers = 5;

  PreparedJob simple = buildSimpleSlidingJob(input, config, base);
  const auto simpleResult = hadoop::runJob(simple.job, simple.map_tasks, simple.reduce);

  PreparedJob agg = buildAggregateSlidingJob(input, config, base);
  const auto aggResult = hadoop::runJob(agg.job, agg.map_tasks, agg.reduce);

  EXPECT_EQ(flattenAggregateOutputs(aggResult, *agg.space),
            flattenSimpleOutputs(simpleResult, 2));

  // The headline claim: aggregate keys shrink materialized intermediate data.
  const u64 simpleBytes =
      simpleResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes);
  const u64 aggBytes = aggResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes);
  EXPECT_LT(aggBytes * 2, simpleBytes);

  // Splitting actually happened in this configuration.
  EXPECT_GT(agg.routing_counters->get(hadoop::counter::kKeySplitsRouting), 0u);
  EXPECT_GT(aggResult.counters.get(hadoop::counter::kKeySplitsOverlap), 0u);
}

TEST(SlidingQuery, OtherCellOpsAndRadii) {
  const grid::Variable input = makeInput(15, 12, 11);
  for (const CellOp op : {CellOp::kMean, CellOp::kSum}) {
    for (const int radius : {1, 2}) {
      SlidingQueryConfig config;
      config.op = op;
      config.window_radius = radius;
      config.num_mappers = 3;
      hadoop::JobConfig base;
      base.num_reducers = 3;
      PreparedJob job = buildAggregateSlidingJob(input, config, base);
      const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
      EXPECT_EQ(flattenAggregateOutputs(result, *job.space), slidingOracle(input, config));
    }
  }
}

TEST(SlidingQuery, ReaggregationPreservesResultsAndShrinksOutput) {
  const grid::Variable input = makeInput(30, 30, 21);
  SlidingQueryConfig config;
  config.num_mappers = 4;
  hadoop::JobConfig base;
  base.num_reducers = 3;

  PreparedJob off = buildAggregateSlidingJob(input, config, base);
  const auto offResult = hadoop::runJob(off.job, off.map_tasks, off.reduce);

  config.reaggregate_output = true;
  PreparedJob on = buildAggregateSlidingJob(input, config, base);
  const auto onResult = hadoop::runJob(on.job, on.map_tasks, on.reduce);

  EXPECT_EQ(flattenAggregateOutputs(onResult, *on.space),
            flattenAggregateOutputs(offResult, *off.space));
  EXPECT_LT(onResult.counters.get(hadoop::counter::kReduceOutputRecords),
            offResult.counters.get(hadoop::counter::kReduceOutputRecords));
}

TEST(SlidingQuery, CombinerPreservesSumAndShrinksShuffle) {
  const grid::Variable input = makeInput(32, 32, 13);
  SlidingQueryConfig config;
  config.op = CellOp::kSum;
  config.num_mappers = 4;
  hadoop::JobConfig base;
  base.num_reducers = 3;
  base.spill_buffer_bytes = 4096;  // several spills so the combiner matters

  for (const bool aggregate : {false, true}) {
    auto build = aggregate ? buildAggregateSlidingJob : buildSimpleSlidingJob;
    config.use_combiner = false;
    PreparedJob plain = build(input, config, base);
    const auto plainResult = hadoop::runJob(plain.job, plain.map_tasks, plain.reduce);
    config.use_combiner = true;
    PreparedJob combined = build(input, config, base);
    const auto combinedResult =
        hadoop::runJob(combined.job, combined.map_tasks, combined.reduce);

    const auto expected = aggregate ? flattenAggregateOutputs(plainResult, *plain.space)
                                    : flattenSimpleOutputs(plainResult, 2);
    const auto got = aggregate ? flattenAggregateOutputs(combinedResult, *combined.space)
                               : flattenSimpleOutputs(combinedResult, 2);
    EXPECT_EQ(got, expected) << (aggregate ? "aggregate" : "simple");
    EXPECT_EQ(got, slidingOracle(input, config));
    EXPECT_LE(combinedResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes),
              plainResult.counters.get(hadoop::counter::kMapOutputMaterializedBytes));
    EXPECT_GT(combinedResult.counters.get(hadoop::counter::kCombineInputRecords), 0u);
  }
}

TEST(SlidingQuery, CombinerWithHolisticOpIsRejected) {
  const grid::Variable input = makeInput(8, 8, 1);
  SlidingQueryConfig config;
  config.op = CellOp::kMedian;
  config.use_combiner = true;
  EXPECT_THROW(buildAggregateSlidingJob(input, config, hadoop::JobConfig{}), std::logic_error);
  EXPECT_THROW(buildSimpleSlidingJob(input, config, hadoop::JobConfig{}), std::logic_error);
}

TEST(SlidingQuery, BisectSplitsMatchOracleAndAggregateBetter) {
  const grid::Variable input = makeInput(48, 48, 29);
  SlidingQueryConfig config;
  config.num_mappers = 8;
  hadoop::JobConfig base;
  base.num_reducers = 4;

  config.split_strategy = SplitStrategy::kSlabs;
  PreparedJob slabs = buildAggregateSlidingJob(input, config, base);
  const auto slabResult = hadoop::runJob(slabs.job, slabs.map_tasks, slabs.reduce);

  config.split_strategy = SplitStrategy::kRecursiveBisect;
  PreparedJob bisect = buildAggregateSlidingJob(input, config, base);
  const auto bisectResult = hadoop::runJob(bisect.job, bisect.map_tasks, bisect.reduce);

  const auto oracle = slidingOracle(input, config);
  EXPECT_EQ(flattenAggregateOutputs(slabResult, *slabs.space), oracle);
  EXPECT_EQ(flattenAggregateOutputs(bisectResult, *bisect.space), oracle);
}

TEST(SlidingQuery, MultiVariableJobKeepsVariablesApart) {
  grid::Dataset ds;
  auto& pressure = ds.addVariable("pressure", grid::DataType::kInt32, grid::Shape({20, 20}));
  grid::gen::fillRandomInt(pressure, 1, 500);
  auto& humidity = ds.addVariable("humidity", grid::DataType::kInt32, grid::Shape({14, 26}));
  grid::gen::fillRandomInt(humidity, 2, 500);

  SlidingQueryConfig config;
  config.num_mappers = 3;
  hadoop::JobConfig base;
  base.num_reducers = 4;

  PreparedJob job =
      buildAggregateMultiVariableSlidingJob(ds, {"pressure", "humidity"}, config, base);
  const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
  const auto got = flattenMultiVariableOutputs(result, *job.space);

  // Per-variable results must match the single-variable oracle exactly.
  std::map<std::pair<int, grid::Coord>, i32> expected;
  for (const auto& [coord, v] : slidingOracle(pressure, config)) expected[{0, coord}] = v;
  for (const auto& [coord, v] : slidingOracle(humidity, config)) expected[{1, coord}] = v;
  EXPECT_EQ(got, expected);
}

TEST(SlidingQuery, MultiVariableValidation) {
  grid::Dataset ds;
  ds.addVariable("a", grid::DataType::kInt32, grid::Shape({4, 4}));
  ds.addVariable("b", grid::DataType::kInt32, grid::Shape({4, 4, 4}));  // wrong rank
  ds.addVariable("f", grid::DataType::kFloat32, grid::Shape({4, 4}));   // wrong type
  SlidingQueryConfig config;
  hadoop::JobConfig base;
  EXPECT_THROW(buildAggregateMultiVariableSlidingJob(ds, {}, config, base), std::logic_error);
  EXPECT_THROW(buildAggregateMultiVariableSlidingJob(ds, {"a", "b"}, config, base),
               std::logic_error);
  EXPECT_THROW(buildAggregateMultiVariableSlidingJob(ds, {"a", "f"}, config, base),
               std::logic_error);
}

TEST(SlidingQuery, ThreeDimensionalInput) {
  grid::Variable input("v", grid::DataType::kInt32, grid::Shape({8, 8, 8}));
  grid::gen::fillRandomInt(input, 5, 100);
  SlidingQueryConfig config;
  config.num_mappers = 4;
  hadoop::JobConfig base;
  base.num_reducers = 3;
  PreparedJob job = buildAggregateSlidingJob(input, config, base);
  const auto result = hadoop::runJob(job.job, job.map_tasks, job.reduce);
  EXPECT_EQ(flattenAggregateOutputs(result, *job.space), slidingOracle(input, config));
}

}  // namespace
}  // namespace scishuffle::scikey
