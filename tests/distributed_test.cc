// Distributed-runtime tests: a coordinator forking real scishuffle_worker
// processes (SCISHUFFLE_WORKER_BIN), with reduce-side fetches crossing genuine
// UNIX-socket transport. The invariant under test everywhere: whatever the
// transport or the workers do — crash, hang, corrupt frames — the job either
// completes bit-identically to the serial baseline or fails loudly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "hadoop/runtime.h"
#include "net/socket.h"
#include "service/coordinator.h"
#include "service/workload.h"
#include "testing/fault_injector.h"

namespace {

using namespace scishuffle;
namespace fs = std::filesystem;
namespace counter = hadoop::counter;
using scishuffle::testing::FaultInjector;
using scishuffle::testing::FaultKind;
using scishuffle::testing::FaultPlan;
using scishuffle::testing::FaultRule;

/// Sockets live here: keep it short (sockaddr_un path limit) and unique per
/// test (ctest -j runs these concurrently).
struct TempDir {
  fs::path path;
  TempDir() {
    char tmpl[] = "/tmp/scishuffle-dist-XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

hadoop::JobResult serialBaseline(const std::vector<std::string>& args) {
  service::Workload w = service::buildWorkload("wordcount", args);
  return hadoop::runJob(w.config, w.map_tasks, w.reduce);
}

service::DistributedConfig baseConfig(const fs::path& dir, int workers) {
  service::DistributedConfig cfg;
  cfg.num_workers = workers;
  cfg.worker_command = {SCISHUFFLE_WORKER_BIN};
  cfg.work_dir = dir;
  cfg.heartbeat_interval_ms = 10;
  cfg.heartbeat_timeout_ms = 2000;
  cfg.transport_retry.enabled = true;
  cfg.transport_retry.max_attempts = 5;
  cfg.transport_retry.base_backoff_us = 500;
  cfg.transport_retry.max_backoff_us = 20'000;
  return cfg;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DistributedTest, TwoWorkersBitIdenticalToSerial) {
  TempDir dir;
  const std::vector<std::string> args = {"6", "400"};
  const hadoop::JobResult serial = serialBaseline(args);
  const service::DistributedConfig cfg = baseConfig(dir.path, 2);
  const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);

  EXPECT_EQ(dist.job.outputs, serial.outputs);
  EXPECT_EQ(dist.workers_spawned, 2);
  EXPECT_EQ(dist.worker_deaths, 0);
  EXPECT_EQ(dist.tasks_reexecuted, 0);
  EXPECT_EQ(dist.recovery_latency_us, 0u);
  EXPECT_EQ(dist.job.counters.get(counter::kWorkerDeathsDetected), 0u);
  // The record-level counters travel worker -> coordinator in TaskDone
  // messages and must fold to exactly the serial totals.
  EXPECT_EQ(dist.job.counters.get(counter::kMapOutputRecords),
            serial.counters.get(counter::kMapOutputRecords));
  EXPECT_EQ(dist.job.counters.get(counter::kReduceOutputRecords),
            serial.counters.get(counter::kReduceOutputRecords));
  EXPECT_EQ(dist.job.counters.get(counter::kReduceShuffleBytes),
            serial.counters.get(counter::kReduceShuffleBytes));
  EXPECT_GT(dist.job.timings.map_phase_us, 0u);
  EXPECT_GT(dist.job.timings.shuffle_us, 0u);
}

TEST(DistributedTest, SingleWorkerMatchesSerial) {
  TempDir dir;
  const std::vector<std::string> args = {"4", "200"};
  const hadoop::JobResult serial = serialBaseline(args);
  const service::DistributedResult dist =
      service::runDistributedJob("wordcount", args, baseConfig(dir.path, 1));
  EXPECT_EQ(dist.job.outputs, serial.outputs);
  EXPECT_EQ(dist.worker_deaths, 0);
}

TEST(DistributedTest, WorkerKillMidShuffleRecovers) {
  TempDir dir;
  const std::vector<std::string> args = {"8", "300"};
  const hadoop::JobResult serial = serialBaseline(args);
  service::DistributedConfig cfg = baseConfig(dir.path, 2);
  // Worker 0 completes one task, then dies SIGKILL-style (_Exit, no goodbye)
  // on its next assignment — mid-shuffle, because the fetch pump is already
  // pulling its first task's segments while later maps run.
  cfg.extra_worker_args = {{"--exit-after-tasks", "1"}};
  cfg.metrics_path = dir.path / "coord-metrics.jsonl";
  cfg.sample_interval_ms = 5;
  cfg.worker_metrics_dir = dir.path / "workers";
  const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);

  EXPECT_EQ(dist.job.outputs, serial.outputs);
  EXPECT_GE(dist.worker_deaths, 1);
  EXPECT_GE(dist.tasks_reexecuted, 1);
  EXPECT_GT(dist.recovery_latency_us, 0u);
  EXPECT_EQ(dist.job.counters.get(counter::kWorkerDeathsDetected),
            static_cast<u64>(dist.worker_deaths));
  EXPECT_EQ(dist.job.counters.get(counter::kMapTasksReexecuted),
            static_cast<u64>(dist.tasks_reexecuted));
  // Re-executed tasks fold their stats/counters exactly once: record totals
  // still match the baseline.
  EXPECT_EQ(dist.job.counters.get(counter::kMapOutputRecords),
            serial.counters.get(counter::kMapOutputRecords));

  // The death and every requeue are structured metrics events.
  const std::string metrics = slurp(cfg.metrics_path);
  EXPECT_NE(metrics.find("worker.spawned"), std::string::npos);
  EXPECT_NE(metrics.find("worker.lost"), std::string::npos);
  EXPECT_NE(metrics.find("dist.task_reexec"), std::string::npos);
  // The surviving worker streamed its own per-process metrics artifact.
  EXPECT_TRUE(fs::exists(cfg.worker_metrics_dir / "worker-1.jsonl"));
}

TEST(DistributedTest, TransportFaultsHealedByReconnect) {
  TempDir dir;
  const std::vector<std::string> args = {"6", "300"};
  const hadoop::JobResult serial = serialBaseline(args);

  FaultPlan plan;
  plan.seed = 7;
  {
    FaultRule refuse;  // connection refused on two dials
    refuse.site = net::site::kNetConnect;
    refuse.kind = FaultKind::kThrowIo;
    refuse.skip_calls = 2;
    refuse.max_triggers = 2;
    plan.rules.push_back(refuse);
    FaultRule corrupt;  // bit-flip two inbound frames (CRC catches)
    corrupt.site = net::site::kNetFrameRecv;
    corrupt.kind = FaultKind::kCorruptBytes;
    corrupt.skip_calls = 4;
    corrupt.max_triggers = 2;
    plan.rules.push_back(corrupt);
    FaultRule cut;  // truncate one inbound frame mid-payload
    cut.site = net::site::kNetFrameRecv;
    cut.kind = FaultKind::kTruncate;
    cut.skip_calls = 9;
    cut.max_triggers = 1;
    plan.rules.push_back(cut);
  }
  FaultInjector faults(plan);

  service::DistributedConfig cfg = baseConfig(dir.path, 2);
  cfg.fault_injector = &faults;
  const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);

  EXPECT_EQ(dist.job.outputs, serial.outputs);
  EXPECT_EQ(dist.worker_deaths, 0) << "faults within the retry budget must heal, not kill";
  EXPECT_GE(faults.totalTriggered(), 3u);
  // Every healed fault was a real reconnect, visible in the retry counter.
  EXPECT_GE(dist.job.counters.get(counter::kShuffleFetchRetries), 3u);
}

TEST(DistributedTest, HungWorkerCaughtByHeartbeatTimeout) {
  TempDir dir;
  const std::vector<std::string> args = {"6", "200"};
  const hadoop::JobResult serial = serialBaseline(args);
  service::DistributedConfig cfg = baseConfig(dir.path, 2);
  // Worker 0 goes silent on its first assignment: no heartbeat, no TaskDone,
  // no EOF (the process stays alive). Only the heartbeat timeout can catch
  // this one.
  cfg.extra_worker_args = {{"--hang-after-tasks", "0"}};
  cfg.heartbeat_interval_ms = 10;
  cfg.heartbeat_timeout_ms = 250;
  cfg.fetch_recv_timeout_ms = 500;
  const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);

  EXPECT_EQ(dist.job.outputs, serial.outputs);
  EXPECT_GE(dist.worker_deaths, 1);
  EXPECT_GE(dist.tasks_reexecuted, 1);
}

TEST(DistributedTest, AllWorkersLostFailsLoudly) {
  TempDir dir;
  service::DistributedConfig cfg = baseConfig(dir.path, 1);
  cfg.extra_worker_args = {{"--exit-after-tasks", "0"}};  // dies on the first task
  EXPECT_THROW(service::runDistributedJob("wordcount", {"4", "100"}, cfg), std::runtime_error);
}

}  // namespace
