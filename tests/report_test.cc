#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "hadoop/report.h"
#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

using scishuffle::testing::JsonParser;
using scishuffle::testing::JsonValue;

JobResult runTinyJob(bool withCombiner,
                     const std::function<void(JobConfig&)>& tweak = {}) {
  JobConfig config;
  config.num_reducers = 2;
  if (withCombiner) {
    config.combiner = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
      emit(key, values.front());
    };
  }
  if (tweak) tweak(config);
  std::vector<MapTask> tasks;
  for (int m = 0; m < 3; ++m) {
    tasks.push_back(MapTask{[m](const EmitFn& emit) {
      for (int i = 0; i < 10; ++i) {
        emit(Bytes{static_cast<u8>(i % 4)}, Bytes{static_cast<u8>(m)});
      }
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    emit(key, Bytes{static_cast<u8>(values.size())});
  };
  return runJob(config, tasks, reduce);
}

TEST(ReportTest, MentionsEveryPhaseAndCounter) {
  const auto result = runTinyJob(false);
  const std::string report = jobReport(result);
  for (const char* needle : {"job report", "phases:", "map:", "shuffle:", "reduce:", "skew:",
                             "map cpu", "map output", "reduce input", "30 records"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle << "\n" << report;
  }
  // No combiner ran, so the combine line must be absent.
  EXPECT_EQ(report.find("combine:"), std::string::npos);
}

TEST(ReportTest, CombinerLineAppearsWhenUsed) {
  const auto result = runTinyJob(true);
  EXPECT_NE(jobReport(result).find("combine:"), std::string::npos);
}

TEST(ReportTest, SummaryLineIsCompact) {
  const auto result = runTinyJob(false);
  const std::string line = jobSummaryLine(result);
  EXPECT_NE(line.find("map records"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(ReportTest, PerTaskStatsArePopulated) {
  const auto result = runTinyJob(false);
  ASSERT_EQ(result.map_tasks.size(), 3u);
  for (const auto& t : result.map_tasks) {
    ASSERT_EQ(t.segment_bytes.size(), 2u);
    EXPECT_GT(t.segment_bytes[0] + t.segment_bytes[1], 0u);
  }
  ASSERT_EQ(result.reduce_tasks.size(), 2u);
  u64 shuffled = 0;
  for (const auto& t : result.reduce_tasks) shuffled += t.shuffled_bytes;
  EXPECT_EQ(shuffled, result.counters.get(counter::kReduceShuffleBytes));
}

TEST(ReportJsonTest, ParsesAndCountersMatchSnapshot) {
  const auto result = runTinyJob(false);
  const JsonValue doc = JsonParser::parse(jobReportJson(result));
  EXPECT_EQ(doc.at("schema").string, "scishuffle.job_report.v1");

  // Every counter in the report equals the live Counters snapshot, and the
  // report has no extras.
  const auto snapshot = result.counters.snapshot();
  const auto& counters = doc.at("counters").object;
  ASSERT_EQ(counters.size(), snapshot.size());
  for (const auto& [name, value] : snapshot) {
    ASSERT_TRUE(doc.at("counters").has(name)) << name;
    EXPECT_EQ(counters.at(name).asU64(), value) << name;
  }

  ASSERT_EQ(doc.at("map_tasks").array.size(), 3u);
  for (const JsonValue& t : doc.at("map_tasks").array) {
    EXPECT_EQ(t.at("segment_bytes").array.size(), 2u);
  }
  ASSERT_EQ(doc.at("reduce_tasks").array.size(), 2u);
  EXPECT_TRUE(doc.at("telemetry").has("counters"));
}

TEST(ReportJsonTest, LegacyTimingFieldsHaveNoOverlap) {
  const auto result = runTinyJob(false, [](JobConfig& c) { c.shuffle_pipeline = false; });
  const JsonValue doc = JsonParser::parse(jobReportJson(result));
  const JsonValue& timings = doc.at("timings");
  // The serial path times shuffle as its own phase and never overlaps it
  // with the map phase.
  EXPECT_TRUE(timings.has("map_phase_us"));
  EXPECT_GT(timings.at("shuffle_us").asU64(), 0u);
  EXPECT_TRUE(timings.has("reduce_phase_us"));
  EXPECT_EQ(timings.at("shuffle_overlap_us").asU64(), 0u);
}

TEST(ReportJsonTest, PipelinedTimingReportsOverlap) {
  const auto result = runTinyJob(false, [](JobConfig& c) { c.shuffle_pipeline = true; });
  const JsonValue doc = JsonParser::parse(jobReportJson(result));
  const JsonValue& timings = doc.at("timings");
  // Pipelined, shuffle_us spans firstPublish..lastFetch and the overlap
  // field records how much of that ran concurrently with the map phase.
  EXPECT_GT(timings.at("shuffle_us").asU64(), 0u);
  EXPECT_TRUE(timings.has("shuffle_overlap_us"));
  EXPECT_LE(timings.at("shuffle_overlap_us").asU64(),
            timings.at("map_phase_us").asU64() + timings.at("shuffle_us").asU64());
}

TEST(ReportJsonTest, HistogramsAppearWhenCollected) {
  const auto result = runTinyJob(false, [](JobConfig& c) { c.collect_histograms = true; });
  ASSERT_GT(result.telemetry.span_count, 0u);

  // Three map tasks -> the map_task duration histogram has three samples.
  const auto* mapTasks = result.telemetry.findHistogram("map_task_us");
  ASSERT_NE(mapTasks, nullptr);
  EXPECT_EQ(mapTasks->count, 3u);
  const auto* reduceTasks = result.telemetry.findHistogram("reduce_task_us");
  ASSERT_NE(reduceTasks, nullptr);
  EXPECT_EQ(reduceTasks->count, 2u);

  // The text report grows its histogram section...
  const std::string report = jobReport(result);
  EXPECT_NE(report.find("histograms ("), std::string::npos);
  EXPECT_NE(report.find("map_task_us"), std::string::npos);
  // ...and the JSON report carries the same data under telemetry.
  const JsonValue doc = JsonParser::parse(jobReportJson(result));
  EXPECT_GT(doc.at("telemetry").at("histograms").array.size(), 0u);
  EXPECT_EQ(doc.at("telemetry").at("span_count").asU64(), result.telemetry.span_count);
}

TEST(ReportJsonTest, HistogramsAbsentByDefault) {
  const auto result = runTinyJob(false);
  EXPECT_TRUE(result.telemetry.histograms.empty());
  EXPECT_EQ(jobReport(result).find("histograms ("), std::string::npos);
  // The counter map still rides along even without histograms.
  EXPECT_EQ(result.telemetry.counters.at(counter::kMapOutputRecords), 30u);
}

TEST(ReportTraceTest, TraceFileCoversEveryStageCategory) {
  const testing::TempDir dir;
  const std::filesystem::path path = dir.file("report_test_trace.json");
  runTinyJob(false, [&path](JobConfig& c) {
    c.trace_path = path;
    c.shuffle_pipeline = true;
    c.intermediate_codec = "gzipish";  // ensures real codec work -> codec spans
  });
  ASSERT_TRUE(std::filesystem::exists(path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonParser::parse(buffer.str());
  std::set<std::string> categories;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    categories.insert(e.at("cat").string);
  }
  for (const char* cat : {"job", "map", "spill", "codec", "shuffle", "merge", "reduce"}) {
    EXPECT_TRUE(categories.count(cat)) << "missing category: " << cat;
  }
}

TEST(ReportTest, ResidentPeakCounterIsMaxOverReduceTasksNotSum) {
  const auto result = runTinyJob(false, [](JobConfig& c) { c.shuffle_pipeline = true; });
  u64 maxPeak = 0;
  u64 sumPeak = 0;
  for (const auto& t : result.reduce_tasks) {
    maxPeak = std::max(maxPeak, t.merge_resident_peak_bytes);
    sumPeak += t.merge_resident_peak_bytes;
  }
  ASSERT_GT(maxPeak, 0u);
  // The job-level counter answers "how much decoded data does ONE reducer
  // hold at peak" — summing across reducers overstated it.
  EXPECT_EQ(result.counters.get(counter::kReduceMergeResidentPeakBytes), maxPeak);
  if (result.reduce_tasks.size() > 1 && sumPeak > maxPeak) {
    EXPECT_LT(result.counters.get(counter::kReduceMergeResidentPeakBytes), sumPeak);
  }
}

TEST(ReportTest, AggregationCountersAppearInReport) {
  JobResult result = runTinyJob(false);
  result.counters.add(counter::kAggregateFlushes, 4);
  result.counters.add(counter::kKeySplitsRouting, 2);
  result.counters.add(counter::kKeySplitsOverlap, 1);
  const std::string report = jobReport(result);
  EXPECT_NE(report.find("aggregation: 4 aggregate flushes"), std::string::npos) << report;
  EXPECT_NE(report.find("routing 2"), std::string::npos) << report;
  EXPECT_NE(report.find("overlap 1"), std::string::npos) << report;
}

TEST(ReportTest, AggregationLineAbsentWhenCountersZero) {
  const auto result = runTinyJob(false);
  EXPECT_EQ(jobReport(result).find("aggregation:"), std::string::npos);
}

TEST(CountersTest, SetOverwritesAccumulatedValue) {
  Counters counters;
  counters.add("X", 10);
  counters.add("X", 5);
  counters.set("X", 7);
  EXPECT_EQ(counters.get("X"), 7u);
  counters.set("FRESH", 3);
  EXPECT_EQ(counters.get("FRESH"), 3u);
}

}  // namespace
}  // namespace scishuffle::hadoop
