#include <gtest/gtest.h>

#include "hadoop/report.h"
#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"

namespace scishuffle::hadoop {
namespace {

JobResult runTinyJob(bool withCombiner) {
  JobConfig config;
  config.num_reducers = 2;
  if (withCombiner) {
    config.combiner = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
      emit(key, values.front());
    };
  }
  std::vector<MapTask> tasks;
  for (int m = 0; m < 3; ++m) {
    tasks.push_back(MapTask{[m](const EmitFn& emit) {
      for (int i = 0; i < 10; ++i) {
        emit(Bytes{static_cast<u8>(i % 4)}, Bytes{static_cast<u8>(m)});
      }
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    emit(key, Bytes{static_cast<u8>(values.size())});
  };
  return runJob(config, tasks, reduce);
}

TEST(ReportTest, MentionsEveryPhaseAndCounter) {
  const auto result = runTinyJob(false);
  const std::string report = jobReport(result);
  for (const char* needle : {"job report", "phases:", "map:", "shuffle:", "reduce:", "skew:",
                             "map cpu", "map output", "reduce input", "30 records"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle << "\n" << report;
  }
  // No combiner ran, so the combine line must be absent.
  EXPECT_EQ(report.find("combine:"), std::string::npos);
}

TEST(ReportTest, CombinerLineAppearsWhenUsed) {
  const auto result = runTinyJob(true);
  EXPECT_NE(jobReport(result).find("combine:"), std::string::npos);
}

TEST(ReportTest, SummaryLineIsCompact) {
  const auto result = runTinyJob(false);
  const std::string line = jobSummaryLine(result);
  EXPECT_NE(line.find("map records"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(ReportTest, PerTaskStatsArePopulated) {
  const auto result = runTinyJob(false);
  ASSERT_EQ(result.map_tasks.size(), 3u);
  for (const auto& t : result.map_tasks) {
    ASSERT_EQ(t.segment_bytes.size(), 2u);
    EXPECT_GT(t.segment_bytes[0] + t.segment_bytes[1], 0u);
  }
  ASSERT_EQ(result.reduce_tasks.size(), 2u);
  u64 shuffled = 0;
  for (const auto& t : result.reduce_tasks) shuffled += t.shuffled_bytes;
  EXPECT_EQ(shuffled, result.counters.get(counter::kReduceShuffleBytes));
}

}  // namespace
}  // namespace scishuffle::hadoop
