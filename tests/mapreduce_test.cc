// End-to-end tests of the mini-Hadoop engine with classic workloads
// (word count, sum-by-key) across codec / combiner / spill / slot settings.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>

#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

std::string toString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

i64 decodeI64(const Bytes& b) {
  MemorySource src(b);
  return readI64(src);
}

/// Deterministic synthetic corpus: `docs` documents of `words` words drawn
/// from a small vocabulary.
std::vector<std::vector<std::string>> corpus(int docs, int words, u32 seed) {
  const std::vector<std::string> vocab = {"the",  "windspeed", "grid",   "key",  "value",
                                          "map",  "reduce",    "hadoop", "sci",  "curve"};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, vocab.size() - 1);
  std::vector<std::vector<std::string>> out(static_cast<std::size_t>(docs));
  for (auto& doc : out) {
    doc.reserve(static_cast<std::size_t>(words));
    for (int w = 0; w < words; ++w) doc.push_back(vocab[pick(rng)]);
  }
  return out;
}

std::map<std::string, i64> expectedCounts(const std::vector<std::vector<std::string>>& docs) {
  std::map<std::string, i64> counts;
  for (const auto& doc : docs) {
    for (const auto& w : doc) ++counts[w];
  }
  return counts;
}

std::map<std::string, i64> actualCounts(const JobResult& result) {
  std::map<std::string, i64> counts;
  for (const auto& out : result.outputs) {
    for (const auto& kv : out) {
      const auto [it, inserted] = counts.emplace(toString(kv.key), decodeI64(kv.value));
      EXPECT_TRUE(inserted) << "key emitted by two reducers: " << toString(kv.key);
    }
  }
  return counts;
}

JobResult runWordCount(const std::vector<std::vector<std::string>>& docs, JobConfig config) {
  std::vector<MapTask> tasks;
  for (const auto& doc : docs) {
    tasks.push_back(MapTask{[&doc](const EmitFn& emit) {
      for (const auto& w : doc) emit(toBytes(w), encodeI64(1));
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  return runJob(config, tasks, reduce);
}

// (reducers, map slots, codec, use combiner, spill buffer bytes)
using EngineCase = std::tuple<int, int, std::string, bool, std::size_t>;

class EngineMatrix : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineMatrix, WordCountIsExact) {
  const auto& [reducers, slots, codec, useCombiner, spillBytes] = GetParam();
  const auto docs = corpus(9, 500, 1234);

  JobConfig config;
  config.num_reducers = reducers;
  config.map_slots = slots;
  config.intermediate_codec = codec;
  config.spill_buffer_bytes = spillBytes;
  if (useCombiner) {
    config.combiner = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
      i64 sum = 0;
      for (const auto& v : values) sum += decodeI64(v);
      emit(key, encodeI64(sum));
    };
  }

  const JobResult result = runWordCount(docs, config);
  EXPECT_EQ(actualCounts(result), expectedCounts(docs));
  EXPECT_EQ(result.counters.get(counter::kMapOutputRecords), 9u * 500u);
  if (useCombiner) {
    EXPECT_LT(result.counters.get(counter::kReduceInputRecords),
              result.counters.get(counter::kMapOutputRecords));
  }
  // Conservation: everything materialized got shuffled.
  EXPECT_EQ(result.counters.get(counter::kMapOutputMaterializedBytes),
            result.counters.get(counter::kReduceShuffleBytes));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrix,
    ::testing::Values(EngineCase{1, 1, "null", false, 16u << 20},
                      EngineCase{4, 3, "null", false, 16u << 20},
                      EngineCase{4, 3, "null", true, 16u << 20},
                      EngineCase{3, 2, "gzipish", false, 16u << 20},
                      EngineCase{3, 2, "gzipish", true, 4096},  // many spills
                      EngineCase{2, 4, "bzip2ish", false, 16u << 20},
                      EngineCase{5, 10, "transform+gzipish", false, 2048},
                      EngineCase{2, 2, "null", true, 1024}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      std::string codec = std::get<2>(info.param);
      for (auto& c : codec) {
        if (c == '+') c = '_';
      }
      return "r" + std::to_string(std::get<0>(info.param)) + "s" +
             std::to_string(std::get<1>(info.param)) + "_" + codec +
             (std::get<3>(info.param) ? "_comb" : "") + "_b" +
             std::to_string(std::get<4>(info.param));
    });

TEST(EngineTest, SortedOrderWithinReducer) {
  const auto docs = corpus(4, 300, 99);
  JobConfig config;
  config.num_reducers = 2;
  const JobResult result = runWordCount(docs, config);
  for (const auto& out : result.outputs) {
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_TRUE(lexicographicLess(out[i - 1].key, out[i].key));
    }
  }
}

TEST(EngineTest, CustomRouterSplitsRecords) {
  // A router that duplicates each record to all partitions (degenerate
  // "aggregate key spanning every reducer").
  JobConfig config;
  config.num_reducers = 3;
  config.router = [](KeyValue&& kv, int parts) {
    std::vector<std::pair<int, KeyValue>> out;
    for (int p = 0; p < parts; ++p) out.emplace_back(p, kv);
    return out;
  };
  std::vector<MapTask> tasks{MapTask{[](const EmitFn& emit) {
    emit(toBytes("k"), encodeI64(5));
  }}};
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    emit(key, encodeI64(static_cast<i64>(values.size())));
  };
  const JobResult result = runJob(config, tasks, reduce);
  int nonEmpty = 0;
  for (const auto& out : result.outputs) {
    if (!out.empty()) ++nonEmpty;
  }
  EXPECT_EQ(nonEmpty, 3);
}

TEST(EngineTest, MergePassesTriggerWhenSegmentsExceedFactor) {
  // 30 mappers, merge factor 4 -> the reducer must run extra merge passes.
  JobConfig config;
  config.num_reducers = 1;
  config.merge_factor = 4;
  config.map_slots = 8;
  std::vector<MapTask> tasks;
  for (int m = 0; m < 30; ++m) {
    tasks.push_back(MapTask{[m](const EmitFn& emit) {
      emit(toBytes("key" + std::to_string(m % 7)), encodeI64(m));
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  const JobResult result = runJob(config, tasks, reduce);
  EXPECT_GT(result.counters.get(counter::kReduceMergePasses), 0u);
  EXPECT_GT(result.counters.get(counter::kReduceMergeMaterializedBytes), 0u);
  i64 total = 0;
  for (const auto& out : result.outputs) {
    for (const auto& kv : out) total += decodeI64(kv.value);
  }
  EXPECT_EQ(total, 29 * 30 / 2);
}

TEST(EngineTest, MapperExceptionPropagates) {
  JobConfig config;
  std::vector<MapTask> tasks{MapTask{[](const EmitFn&) { throw std::runtime_error("boom"); }}};
  const ReduceFn reduce = [](const Bytes&, std::vector<Bytes>&, const EmitFn&) {};
  EXPECT_THROW(runJob(config, tasks, reduce), std::runtime_error);
}

TEST(EngineTest, FlakyMapTaskSucceedsWithRetries) {
  JobConfig config;
  config.max_task_attempts = 3;
  config.map_slots = 1;  // deterministic attempt ordering
  auto failures = std::make_shared<std::atomic<int>>(0);
  std::vector<MapTask> tasks{MapTask{[failures](const EmitFn& emit) {
    // First two attempts die *after* emitting — retries must discard the
    // partial output or the count would triple.
    emit(toBytes("k"), encodeI64(1));
    if (failures->fetch_add(1) < 2) throw std::runtime_error("transient");
  }}};
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  const JobResult result = runJob(config, tasks, reduce);
  ASSERT_EQ(result.outputs[0].size(), 1u);
  EXPECT_EQ(decodeI64(result.outputs[0][0].value), 1);  // not 3: attempts were discarded
  EXPECT_EQ(failures->load(), 3);
}

TEST(EngineTest, FlakyReduceTaskSucceedsWithRetries) {
  JobConfig config;
  config.max_task_attempts = 2;
  auto failures = std::make_shared<std::atomic<int>>(0);
  std::vector<MapTask> tasks{MapTask{[](const EmitFn& emit) {
    emit(toBytes("a"), encodeI64(7));
  }}};
  const ReduceFn reduce = [failures](const Bytes& key, std::vector<Bytes>& values,
                                     const EmitFn& emit) {
    if (failures->fetch_add(1) < 1) throw std::runtime_error("transient");
    emit(key, values.front());
  };
  const JobResult result = runJob(config, tasks, reduce);
  ASSERT_EQ(result.outputs[0].size(), 1u);
  EXPECT_EQ(decodeI64(result.outputs[0][0].value), 7);
}

TEST(EngineTest, PersistentFailureStillFails) {
  JobConfig config;
  config.max_task_attempts = 3;
  std::vector<MapTask> tasks{MapTask{[](const EmitFn&) { throw std::runtime_error("fatal"); }}};
  const ReduceFn reduce = [](const Bytes&, std::vector<Bytes>&, const EmitFn&) {};
  EXPECT_THROW(runJob(config, tasks, reduce), std::runtime_error);
}

TEST(EngineTest, DiskBackedSpillsProduceIdenticalResults) {
  const auto docs = corpus(6, 400, 77);
  JobConfig memConfig;
  memConfig.num_reducers = 3;
  memConfig.spill_buffer_bytes = 2048;  // force several spills per task
  JobConfig diskConfig = memConfig;
  const testing::TempDir dir("scishuffle_spills");
  diskConfig.spill_dir = dir.path();

  const JobResult mem = runWordCount(docs, memConfig);
  const JobResult disk = runWordCount(docs, diskConfig);
  EXPECT_EQ(actualCounts(disk), actualCounts(mem));
  EXPECT_EQ(disk.counters.get(counter::kMapOutputMaterializedBytes),
            mem.counters.get(counter::kMapOutputMaterializedBytes));
  // Transient spill files are cleaned up after the merge.
  EXPECT_TRUE(std::filesystem::is_empty(dir.path()));
}

TEST(EngineTest, EmptyJobProducesEmptyOutputs) {
  JobConfig config;
  config.num_reducers = 2;
  const ReduceFn reduce = [](const Bytes&, std::vector<Bytes>&, const EmitFn&) {};
  const JobResult result = runJob(config, {}, reduce);
  EXPECT_EQ(result.outputs.size(), 2u);
  EXPECT_TRUE(result.outputs[0].empty());
  EXPECT_TRUE(result.outputs[1].empty());
}

}  // namespace
}  // namespace scishuffle::hadoop
