#include <gtest/gtest.h>

#include <set>

#include "dfs/mini_dfs.h"
#include "testing_support.h"

namespace scishuffle::dfs {
namespace {

DfsConfig smallBlocks() {
  DfsConfig config;
  config.block_size = 1000;
  config.replication = 3;
  config.nodes = 5;
  return config;
}

TEST(MiniDfsTest, RoundTripsAcrossBlocks) {
  MiniDfs fs(smallBlocks());
  const Bytes data = testing::randomBytes(4500, 1);  // 5 blocks (last partial)
  fs.writeFile("/data/input.nc", data, 2);
  EXPECT_TRUE(fs.exists("/data/input.nc"));
  EXPECT_EQ(fs.fileSize("/data/input.nc"), 4500u);
  EXPECT_EQ(fs.readFile("/data/input.nc"), data);

  const auto blocks = fs.locate("/data/input.nc");
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[4].length, 500u);
  u64 offset = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.offset, offset);
    offset += b.length;
  }
}

TEST(MiniDfsTest, PlacementPolicy) {
  MiniDfs fs(smallBlocks());
  fs.writeFile("/f", testing::randomBytes(3000, 2), /*writerNode=*/4);
  for (const auto& block : fs.locate("/f")) {
    // First replica writer-local, all replicas distinct, correct count.
    EXPECT_EQ(block.replicas.front(), 4);
    EXPECT_EQ(block.replicas.size(), 3u);
    const std::set<int> unique(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    for (const int r : unique) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 5);
    }
  }
}

TEST(MiniDfsTest, ReplicationClampsToClusterSize) {
  DfsConfig config;
  config.nodes = 2;
  config.replication = 5;
  MiniDfs fs(config);
  fs.writeFile("/f", testing::randomBytes(100, 3));
  EXPECT_EQ(fs.locate("/f")[0].replicas.size(), 2u);
}

TEST(MiniDfsTest, ReadBlockPrefersLocalReplica) {
  MiniDfs fs(smallBlocks());
  const Bytes data = testing::randomBytes(2000, 4);
  fs.writeFile("/f", data, 1);
  const auto blocks = fs.locate("/f");
  // Reading from a node that has a replica should pick that node.
  for (const int replica : blocks[0].replicas) {
    int chosen = -1;
    const Bytes block = fs.readBlock("/f", 0, replica, &chosen);
    EXPECT_EQ(chosen, replica);
    EXPECT_EQ(block.size(), 1000u);
  }
  // A node with no replica falls back to some replica.
  int noReplicaNode = -1;
  for (int n = 0; n < 5; ++n) {
    if (std::find(blocks[0].replicas.begin(), blocks[0].replicas.end(), n) ==
        blocks[0].replicas.end()) {
      noReplicaNode = n;
      break;
    }
  }
  ASSERT_NE(noReplicaNode, -1);
  int chosen = -1;
  fs.readBlock("/f", 0, noReplicaNode, &chosen);
  EXPECT_NE(chosen, noReplicaNode);
}

TEST(MiniDfsTest, NodeUsageAccountsReplicas) {
  MiniDfs fs(smallBlocks());
  fs.writeFile("/f", testing::randomBytes(1000, 5), 0);
  u64 total = 0;
  for (int n = 0; n < 5; ++n) total += fs.bytesOnNode(n);
  EXPECT_EQ(total, 3000u);  // one block x replication 3
  EXPECT_EQ(fs.bytesOnNode(0), 1000u);  // writer-local replica
}

TEST(MiniDfsTest, EmptyFile) {
  MiniDfs fs(smallBlocks());
  fs.writeFile("/empty", Bytes{});
  EXPECT_EQ(fs.fileSize("/empty"), 0u);
  EXPECT_TRUE(fs.readFile("/empty").empty());
  EXPECT_EQ(fs.locate("/empty").size(), 1u);  // HDFS-style zero-length block
}

TEST(MiniDfsTest, NamespaceOperations) {
  MiniDfs fs(smallBlocks());
  fs.writeFile("/a", testing::randomBytes(10, 6));
  fs.writeFile("/b", testing::randomBytes(10, 7));
  EXPECT_EQ(fs.listFiles(), (std::vector<std::string>{"/a", "/b"}));
  EXPECT_THROW(fs.writeFile("/a", Bytes{}), std::logic_error);  // no overwrite
  fs.remove("/a");
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_THROW(fs.remove("/a"), std::out_of_range);
  EXPECT_THROW(fs.readFile("/nope"), std::out_of_range);
}

}  // namespace
}  // namespace scishuffle::dfs
