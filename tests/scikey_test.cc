#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <tuple>

#include "scikey/aggregate_grouper.h"
#include "scikey/aggregate_key.h"
#include "scikey/aggregator.h"
#include "scikey/curve_space.h"
#include "scikey/simple_key.h"

namespace scishuffle::scikey {
namespace {

TEST(SimpleKeyTest, RoundTripsBothModes) {
  const SimpleKey key{3, "windspeed1", {-1, 7, 1000}};
  const Bytes indexed = serializeSimpleKey(key, VariableTag::kIndex);
  EXPECT_EQ(indexed.size(), simpleKeySize(key, VariableTag::kIndex));
  EXPECT_EQ(indexed.size(), 4u + 12u);
  SimpleKey back = deserializeSimpleKey(indexed, VariableTag::kIndex, 3);
  EXPECT_EQ(back.varIndex, 3);
  EXPECT_EQ(back.coords, key.coords);

  const Bytes named = serializeSimpleKey(key, VariableTag::kName);
  EXPECT_EQ(named.size(), 11u + 12u);
  back = deserializeSimpleKey(named, VariableTag::kName, 3);
  EXPECT_EQ(back.varName, "windspeed1");
  EXPECT_EQ(back.coords, key.coords);
}

TEST(SimpleKeyTest, ByteOrderMatchesNumericOrder) {
  // The sortable encoding must make lexicographic byte order equal numeric
  // order, including across the sign boundary.
  const std::vector<i64> values = {-100, -1, 0, 1, 99, 1000000};
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    const Bytes a = serializeSimpleKey(SimpleKey{0, "", {values[i]}}, VariableTag::kIndex);
    const Bytes b = serializeSimpleKey(SimpleKey{0, "", {values[i + 1]}}, VariableTag::kIndex);
    EXPECT_TRUE(hadoop::lexicographicLess(a, b)) << values[i] << " vs " << values[i + 1];
  }
}

TEST(AggregateKeyTest, RoundTripsAndOrders) {
  const AggregateKey key{2, (sfc::CurveIndex{1} << 80) + 12345, 67890};
  const Bytes bytes = serializeAggregateKey(key);
  EXPECT_EQ(bytes.size(), kAggregateKeySize);
  EXPECT_EQ(deserializeAggregateKey(bytes), key);

  const Bytes smallerStart = serializeAggregateKey(AggregateKey{2, 5, 1});
  const Bytes negVar = serializeAggregateKey(AggregateKey{-1, 999, 1});
  EXPECT_TRUE(hadoop::lexicographicLess(negVar, smallerStart));
  EXPECT_TRUE(hadoop::lexicographicLess(smallerStart, bytes));
}

TEST(AggregateKeyTest, SplitDividesValuesProportionally) {
  const AggregateKey key{0, 10, 6};
  Bytes blob;
  for (u8 i = 0; i < 24; ++i) blob.push_back(i);  // 6 cells x 4 bytes
  const auto [left, right] = splitAggregateRecord(key, blob, 14, 4);
  EXPECT_EQ(deserializeAggregateKey(left.key), (AggregateKey{0, 10, 4}));
  EXPECT_EQ(deserializeAggregateKey(right.key), (AggregateKey{0, 14, 2}));
  EXPECT_EQ(left.value.size(), 16u);
  EXPECT_EQ(right.value, (Bytes{16, 17, 18, 19, 20, 21, 22, 23}));
  EXPECT_THROW(splitAggregateRecord(key, blob, 10, 4), std::logic_error);
  EXPECT_THROW(splitAggregateRecord(key, blob, 16, 4), std::logic_error);
}

TEST(CurveSpaceTest, HandlesNegativeDomains) {
  const grid::Box domain = grid::Box::fromExtents({-1, -1}, {11, 11});
  const CurveSpace space(sfc::CurveKind::kZOrder, domain);
  const grid::Coord c{-1, 5};
  const auto idx = space.encode(c);
  EXPECT_EQ(space.decode(idx), c);
  EXPECT_THROW(space.encode({-2, 0}), std::logic_error);
  // Distinct cells map to distinct indices.
  std::map<std::string, int> seen;
  domain.forEachCell([&](const grid::Coord& cell) {
    ++seen[sfc::toString(space.encode(cell))];
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(domain.volume()));
}

class CurveSpaceSweep : public ::testing::TestWithParam<std::tuple<sfc::CurveKind, i64, i64>> {};

TEST_P(CurveSpaceSweep, BijectiveOverNonPowerOfTwoDomains) {
  const auto& [kind, nx, ny] = GetParam();
  const grid::Box domain = grid::Box::fromExtents({-3, 5}, {-3 + nx, 5 + ny});
  const CurveSpace space(kind, domain);
  std::set<std::string> seen;
  domain.forEachCell([&](const grid::Coord& c) {
    const auto idx = space.encode(c);
    EXPECT_TRUE(seen.insert(sfc::toString(idx)).second);
    EXPECT_EQ(space.decode(idx), c);
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(domain.volume()));
}

INSTANTIATE_TEST_SUITE_P(
    Domains, CurveSpaceSweep,
    ::testing::Combine(::testing::Values(sfc::CurveKind::kZOrder, sfc::CurveKind::kHilbert,
                                         sfc::CurveKind::kGray),
                       ::testing::Values<i64>(1, 7, 33), ::testing::Values<i64>(5, 16)),
    [](const auto& info) {
      return sfc::curveKindName(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

TEST(AggregateRouterTest, SplitsAtPartitionBoundaries) {
  hadoop::Counters counters;
  // Index space of 100, 4 partitions => boundaries at 25, 50, 75.
  const auto router = aggregateRangeRouter(100, 4, &counters);

  // A range [20, 60) must split into [20,25) [25,50) [50,60).
  Bytes blob(40 * 4, 9);
  auto routed = router(hadoop::KeyValue{serializeAggregateKey({0, 20, 40}), blob}, 4);
  ASSERT_EQ(routed.size(), 3u);
  EXPECT_EQ(routed[0].first, 0);
  EXPECT_EQ(deserializeAggregateKey(routed[0].second.key), (AggregateKey{0, 20, 5}));
  EXPECT_EQ(routed[1].first, 1);
  EXPECT_EQ(deserializeAggregateKey(routed[1].second.key), (AggregateKey{0, 25, 25}));
  EXPECT_EQ(routed[2].first, 2);
  EXPECT_EQ(deserializeAggregateKey(routed[2].second.key), (AggregateKey{0, 50, 10}));
  EXPECT_EQ(counters.get(hadoop::counter::kKeySplitsRouting), 2u);

  // Value bytes conserved across the split.
  std::size_t total = 0;
  for (const auto& [p, kv] : routed) total += kv.value.size();
  EXPECT_EQ(total, blob.size());

  // A range inside one partition is not split.
  routed = router(hadoop::KeyValue{serializeAggregateKey({0, 30, 10}), Bytes(40, 1)}, 4);
  ASSERT_EQ(routed.size(), 1u);
  EXPECT_EQ(routed[0].first, 1);
}

TEST(AggregatorTest, CoalescesContiguousRuns) {
  const grid::Box domain({0, 0}, {8, 8});
  const CurveSpace space(sfc::CurveKind::kRowMajor, domain);  // row-major: easy to reason about
  std::vector<hadoop::KeyValue> emitted;
  {
    AggregatorConfig config;
    config.value_size = 4;
    Aggregator agg(space, config, [&](Bytes k, Bytes v) {
      emitted.push_back({std::move(k), std::move(v)});
    });
    // Cells (0,0)..(0,5) contiguous under row-major, plus an isolated (3,3).
    for (i64 y = 0; y < 6; ++y) agg.add(0, {0, y}, Bytes{0, 0, 0, static_cast<u8>(y)});
    agg.add(0, {3, 3}, Bytes{1, 1, 1, 1});
  }  // destructor flushes
  ASSERT_EQ(emitted.size(), 2u);
  const AggregateKey run = deserializeAggregateKey(emitted[0].key);
  EXPECT_EQ(run.count, 6u);
  EXPECT_EQ(emitted[0].value.size(), 24u);
  // Values packed in curve order.
  EXPECT_EQ(emitted[0].value[3], 0);
  EXPECT_EQ(emitted[0].value[23], 5);
  EXPECT_EQ(deserializeAggregateKey(emitted[1].key).count, 1u);
}

TEST(AggregatorTest, DuplicateCellsGoToLayers) {
  const grid::Box domain({0}, {16});
  const CurveSpace space(sfc::CurveKind::kRowMajor, domain);
  std::vector<hadoop::KeyValue> emitted;
  {
    AggregatorConfig config;
    config.value_size = 4;
    Aggregator agg(space, config, [&](Bytes k, Bytes v) {
      emitted.push_back({std::move(k), std::move(v)});
    });
    // Cell 4 twice, cells 5,6 once: layer0 = [4,7), layer1 = [4,5).
    agg.add(0, {4}, Bytes{0, 0, 0, 1});
    agg.add(0, {4}, Bytes{0, 0, 0, 2});
    agg.add(0, {5}, Bytes{0, 0, 0, 3});
    agg.add(0, {6}, Bytes{0, 0, 0, 4});
  }
  ASSERT_EQ(emitted.size(), 2u);
  std::multimap<u64, u64> ranges;  // start -> count
  for (const auto& kv : emitted) {
    const auto key = deserializeAggregateKey(kv.key);
    ranges.emplace(static_cast<u64>(key.start), key.count);
  }
  EXPECT_EQ(ranges.count(4), 2u);
  u64 totalCells = 0;
  for (const auto& [s, c] : ranges) totalCells += c;
  EXPECT_EQ(totalCells, 4u);
}

TEST(AggregatorTest, FlushThresholdBoundsMemoryAndBreaksRuns) {
  const grid::Box domain({0}, {1024});
  const CurveSpace space(sfc::CurveKind::kRowMajor, domain);
  hadoop::Counters counters;
  std::vector<hadoop::KeyValue> emitted;
  AggregatorConfig config;
  config.value_size = 4;
  config.flush_threshold_bytes = 256;  // tiny: forces many flushes
  {
    Aggregator agg(space, config, [&](Bytes k, Bytes v) {
      emitted.push_back({std::move(k), std::move(v)});
    }, &counters);
    for (i64 i = 0; i < 500; ++i) agg.add(0, {i}, Bytes{0, 0, 0, 0});
  }
  EXPECT_GT(counters.get(hadoop::counter::kAggregateFlushes), 5u);
  // Flushes fragment what would have been one run ("slightly reduces the
  // effectiveness of aggregation") but never lose cells.
  u64 total = 0;
  for (const auto& kv : emitted) total += deserializeAggregateKey(kv.key).count;
  EXPECT_EQ(total, 500u);
  EXPECT_GT(emitted.size(), 1u);
}

TEST(AggregatorTest, AlignmentCutsRunsAtBoundaries) {
  const grid::Box domain({0}, {64});
  const CurveSpace space(sfc::CurveKind::kRowMajor, domain);
  std::vector<hadoop::KeyValue> emitted;
  AggregatorConfig config;
  config.value_size = 4;
  config.alignment = 8;
  {
    Aggregator agg(space, config, [&](Bytes k, Bytes v) {
      emitted.push_back({std::move(k), std::move(v)});
    });
    for (i64 i = 3; i < 21; ++i) agg.add(0, {i}, Bytes{0, 0, 0, 0});
  }
  // [3,21) cut at 8 and 16: three aggregates.
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(deserializeAggregateKey(emitted[0].key), (AggregateKey{0, 3, 5}));
  EXPECT_EQ(deserializeAggregateKey(emitted[1].key), (AggregateKey{0, 8, 8}));
  EXPECT_EQ(deserializeAggregateKey(emitted[2].key), (AggregateKey{0, 16, 5}));
}

TEST(AggregatorTest, VariablesAggregateIndependently) {
  // Two variables sharing cells must never coalesce into one range.
  const grid::Box domain({0}, {32});
  const CurveSpace space(sfc::CurveKind::kRowMajor, domain);
  std::vector<hadoop::KeyValue> emitted;
  {
    AggregatorConfig config;
    config.value_size = 4;
    Aggregator agg(space, config, [&](Bytes k, Bytes v) {
      emitted.push_back({std::move(k), std::move(v)});
    });
    for (i64 i = 0; i < 8; ++i) {
      agg.add(0, {i}, Bytes{0, 0, 0, static_cast<u8>(i)});
      agg.add(1, {i}, Bytes{1, 0, 0, static_cast<u8>(i)});
    }
  }
  ASSERT_EQ(emitted.size(), 2u);
  const AggregateKey a = deserializeAggregateKey(emitted[0].key);
  const AggregateKey b = deserializeAggregateKey(emitted[1].key);
  EXPECT_EQ(a.var, 0);
  EXPECT_EQ(b.var, 1);
  EXPECT_EQ(a.count, 8u);
  EXPECT_EQ(b.count, 8u);
  // Values stay with their variable.
  EXPECT_EQ(emitted[0].value[0], 0);
  EXPECT_EQ(emitted[1].value[0], 1);
}

TEST(AggregateGrouperTest, VariablesNeverMixInGroups) {
  // Identical ranges on different variables are distinct reduce groups.
  hadoop::Counters counters;
  std::vector<hadoop::KeyValue> records = {
      {serializeAggregateKey({0, 10, 4}), Bytes(16, 1)},
      {serializeAggregateKey({1, 10, 4}), Bytes(16, 2)},
      {serializeAggregateKey({1, 12, 4}), Bytes(16, 3)},  // overlaps var 1 only
  };
  std::sort(records.begin(), records.end(), [](const auto& x, const auto& y) {
    return hadoop::lexicographicLess(x.key, y.key);
  });
  struct Stream final : hadoop::KVStream {
    explicit Stream(std::vector<hadoop::KeyValue> kvs) : records(std::move(kvs)) {}
    std::optional<hadoop::KeyValue> next() override {
      if (pos >= records.size()) return std::nullopt;
      return std::move(records[pos++]);
    }
    std::vector<hadoop::KeyValue> records;
    std::size_t pos = 0;
  } stream(std::move(records));

  AggregateGrouper grouper(4);
  std::vector<AggregateKey> groups;
  const hadoop::ReduceFn reduce = [&](const Bytes& key, std::vector<Bytes>&,
                                      const hadoop::EmitFn&) {
    groups.push_back(deserializeAggregateKey(key));
  };
  grouper.run(stream, reduce, [](Bytes, Bytes) {}, counters);
  // Var 0 untouched; var 1's pair split at overlap boundaries.
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (AggregateKey{0, 10, 4}));
  EXPECT_EQ(groups[1], (AggregateKey{1, 10, 2}));
  EXPECT_EQ(groups[2], (AggregateKey{1, 12, 2}));
  EXPECT_EQ(groups[3], (AggregateKey{1, 14, 2}));
}

/// Feeds records through the grouper and collects (key, layer blobs) groups.
struct VectorStream final : hadoop::KVStream {
  explicit VectorStream(std::vector<hadoop::KeyValue> kvs) : records(std::move(kvs)) {}
  std::optional<hadoop::KeyValue> next() override {
    if (pos >= records.size()) return std::nullopt;
    return std::move(records[pos++]);
  }
  std::vector<hadoop::KeyValue> records;
  std::size_t pos = 0;
};

std::vector<std::pair<AggregateKey, std::vector<Bytes>>> runGrouper(
    std::vector<hadoop::KeyValue> records, std::size_t valueSize, hadoop::Counters& counters) {
  // Grouper expects (var, start) sorted input, as the engine merge provides.
  std::sort(records.begin(), records.end(), [](const auto& a, const auto& b) {
    return hadoop::lexicographicLess(a.key, b.key);
  });
  VectorStream stream(std::move(records));
  AggregateGrouper grouper(valueSize);
  std::vector<std::pair<AggregateKey, std::vector<Bytes>>> groups;
  const hadoop::ReduceFn reduce = [&](const Bytes& key, std::vector<Bytes>& values,
                                      const hadoop::EmitFn&) {
    groups.emplace_back(deserializeAggregateKey(key), values);
  };
  grouper.run(stream, reduce, [](Bytes, Bytes) {}, counters);
  return groups;
}

Bytes blobOf(u64 count, u8 fill) { return Bytes(static_cast<std::size_t>(count) * 4, fill); }

TEST(AggregateGrouperTest, DisjointKeysPassThrough) {
  hadoop::Counters counters;
  const auto groups = runGrouper(
      {
          {serializeAggregateKey({0, 0, 4}), blobOf(4, 1)},
          {serializeAggregateKey({0, 10, 2}), blobOf(2, 2)},
          {serializeAggregateKey({1, 0, 3}), blobOf(3, 3)},
      },
      4, counters);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(counters.get(hadoop::counter::kKeySplitsOverlap), 0u);
  EXPECT_EQ(groups[0].first, (AggregateKey{0, 0, 4}));
  EXPECT_EQ(groups[0].second.size(), 1u);
}

TEST(AggregateGrouperTest, IdenticalKeysGroupTogether) {
  hadoop::Counters counters;
  const auto groups = runGrouper(
      {
          {serializeAggregateKey({0, 5, 3}), blobOf(3, 1)},
          {serializeAggregateKey({0, 5, 3}), blobOf(3, 2)},
          {serializeAggregateKey({0, 5, 3}), blobOf(3, 3)},
      },
      4, counters);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].second.size(), 3u);
  EXPECT_EQ(counters.get(hadoop::counter::kKeySplitsOverlap), 0u);
}

TEST(AggregateGrouperTest, PartialOverlapSplitsAtBoundaries) {
  // Fig. 7: [0,6) and [4,10) -> fragments [0,4) [4,6)x2 [6,10).
  hadoop::Counters counters;
  Bytes a;
  for (u8 i = 0; i < 24; ++i) a.push_back(i);
  Bytes b;
  for (u8 i = 100; i < 124; ++i) b.push_back(i);
  const auto groups = runGrouper(
      {
          {serializeAggregateKey({0, 0, 6}), a},
          {serializeAggregateKey({0, 4, 6}), b},
      },
      4, counters);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_GT(counters.get(hadoop::counter::kKeySplitsOverlap), 0u);

  EXPECT_EQ(groups[0].first, (AggregateKey{0, 0, 4}));
  ASSERT_EQ(groups[0].second.size(), 1u);
  EXPECT_EQ(groups[0].second[0], Bytes(a.begin(), a.begin() + 16));

  EXPECT_EQ(groups[1].first, (AggregateKey{0, 4, 2}));
  ASSERT_EQ(groups[1].second.size(), 2u);  // one slice from each input

  EXPECT_EQ(groups[2].first, (AggregateKey{0, 6, 4}));
  ASSERT_EQ(groups[2].second.size(), 1u);
  EXPECT_EQ(groups[2].second[0], Bytes(b.begin() + 8, b.end()));
}

TEST(AggregateGrouperTest, NestedAndSharedStartOverlaps) {
  // [0,10) vs [2,4): nested. Plus [2,4) duplicated, and [0,2) sharing start.
  hadoop::Counters counters;
  const auto groups = runGrouper(
      {
          {serializeAggregateKey({0, 0, 10}), blobOf(10, 1)},
          {serializeAggregateKey({0, 2, 2}), blobOf(2, 2)},
          {serializeAggregateKey({0, 2, 2}), blobOf(2, 3)},
          {serializeAggregateKey({0, 0, 2}), blobOf(2, 4)},
      },
      4, counters);
  // Expected fragments: [0,2)x2, [2,4)x3, [4,10)x1.
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].first, (AggregateKey{0, 0, 2}));
  EXPECT_EQ(groups[0].second.size(), 2u);
  EXPECT_EQ(groups[1].first, (AggregateKey{0, 2, 2}));
  EXPECT_EQ(groups[1].second.size(), 3u);
  EXPECT_EQ(groups[2].first, (AggregateKey{0, 4, 6}));
  EXPECT_EQ(groups[2].second.size(), 1u);
}

TEST(AggregateGrouperTest, CellCoverageIsConservedUnderRandomOverlaps) {
  // Property: for random overlapping inputs, per-cell multiplicity before ==
  // after, groups are disjoint, and every group's layers cover its range.
  std::mt19937 rng(7);
  std::uniform_int_distribution<u64> startDist(0, 60);
  std::uniform_int_distribution<u64> lenDist(1, 12);
  std::vector<hadoop::KeyValue> records;
  std::map<u64, int> expected;
  for (int i = 0; i < 40; ++i) {
    const u64 start = startDist(rng);
    const u64 len = lenDist(rng);
    for (u64 c = start; c < start + len; ++c) ++expected[c];
    records.push_back({serializeAggregateKey({0, start, len}), blobOf(len, static_cast<u8>(i))});
  }
  hadoop::Counters counters;
  const auto groups = runGrouper(std::move(records), 4, counters);

  std::map<u64, int> actual;
  u64 lastEnd = 0;
  for (const auto& [key, layers] : groups) {
    EXPECT_GE(static_cast<u64>(key.start), lastEnd) << "groups must be disjoint and ordered";
    lastEnd = static_cast<u64>(key.end());
    for (const auto& blob : layers) {
      ASSERT_EQ(blob.size(), key.count * 4);
      for (u64 c = 0; c < key.count; ++c) ++actual[static_cast<u64>(key.start) + c];
    }
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace scishuffle::scikey
