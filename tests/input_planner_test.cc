#include <gtest/gtest.h>

#include <map>

#include "scikey/input_planner.h"

namespace scishuffle::scikey {
namespace {

void expectExactPartition(const grid::Box& domain, const std::vector<grid::Box>& splits) {
  std::map<grid::Coord, int> coverage;
  for (const auto& s : splits) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(domain.containsBox(s));
    s.forEachCell([&](const grid::Coord& c) { ++coverage[c]; });
  }
  i64 covered = 0;
  for (const auto& [c, n] : coverage) {
    EXPECT_EQ(n, 1) << grid::coordToString(c) << " covered " << n << " times";
    ++covered;
  }
  EXPECT_EQ(covered, domain.volume());
}

class PlannerPartition
    : public ::testing::TestWithParam<std::tuple<SplitStrategy, int>> {};

TEST_P(PlannerPartition, CoversDomainExactly) {
  const auto& [strategy, numSplits] = GetParam();
  const grid::Box domain({-2, 3}, {17, 11});
  const auto splits = planInputSplits(domain, numSplits, strategy);
  EXPECT_LE(static_cast<int>(splits.size()), numSplits);
  expectExactPartition(domain, splits);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PlannerPartition,
    ::testing::Combine(::testing::Values(SplitStrategy::kSlabs, SplitStrategy::kRecursiveBisect),
                       ::testing::Values(1, 2, 5, 16, 64)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == SplitStrategy::kSlabs ? "slabs" : "bisect") +
             "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(PlannerTest, SlabsCutDimensionZeroOnly) {
  const grid::Box domain({0, 0}, {12, 9});
  for (const auto& s : planInputSplits(domain, 4, SplitStrategy::kSlabs)) {
    EXPECT_EQ(s.size()[1], 9);
  }
}

TEST(PlannerTest, BisectSplitsAreCompact) {
  // A long thin domain: slabs keep the bad aspect ratio, bisection fixes it.
  const grid::Box domain({0, 0}, {8, 64});
  const auto slabs = planInputSplits(domain, 8, SplitStrategy::kSlabs);
  const auto bisect = planInputSplits(domain, 8, SplitStrategy::kRecursiveBisect);
  auto worstAspect = [](const std::vector<grid::Box>& splits) {
    double worst = 1;
    for (const auto& s : splits) {
      const double a = static_cast<double>(std::max(s.size()[0], s.size()[1])) /
                       static_cast<double>(std::min(s.size()[0], s.size()[1]));
      worst = std::max(worst, a);
    }
    return worst;
  };
  EXPECT_LT(worstAspect(bisect), worstAspect(slabs));
  expectExactPartition(domain, bisect);
}

TEST(PlannerTest, MoreSplitsThanCellsSaturates) {
  const grid::Box domain({0}, {3});
  const auto splits = planInputSplits(domain, 10, SplitStrategy::kRecursiveBisect);
  EXPECT_EQ(splits.size(), 3u);
  expectExactPartition(domain, splits);
}

TEST(PlannerTest, ThreeDimensionalBisect) {
  const grid::Box domain({0, 0, 0}, {10, 6, 14});
  const auto splits = planInputSplits(domain, 7, SplitStrategy::kRecursiveBisect);
  expectExactPartition(domain, splits);
}

TEST(PlannerTest, InvalidArgumentsThrow) {
  EXPECT_THROW(planInputSplits(grid::Box({0}, {5}), 0, SplitStrategy::kSlabs), std::logic_error);
  EXPECT_THROW(planInputSplits(grid::Box({0}, {0}), 2, SplitStrategy::kSlabs), std::logic_error);
}

}  // namespace
}  // namespace scishuffle::scikey
