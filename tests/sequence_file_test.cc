#include <gtest/gtest.h>

#include "hadoop/sequence_file.h"
#include "io/streams.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

std::vector<KeyValue> sampleRecords(int n, u32 seed) {
  std::vector<KeyValue> records;
  for (int i = 0; i < n; ++i) {
    records.push_back(KeyValue{testing::randomBytes(static_cast<std::size_t>(i % 30), seed + i),
                               testing::runnyBytes(static_cast<std::size_t>((i * 13) % 200),
                                                   seed + 1000 + i)});
  }
  return records;
}

Bytes writeAll(const std::vector<KeyValue>& records, const SequenceFileHeader& header,
               u64 seed = 0) {
  Bytes file;
  MemorySink sink(file);
  SequenceFileWriter writer(sink, header, seed);
  for (const auto& kv : records) writer.append(kv.key, kv.value);
  writer.close();
  return file;
}

TEST(SequenceFileTest, HeaderRoundTrips) {
  SequenceFileHeader header{"scikey.AggregateKey", "bytes", "null"};
  const Bytes file = writeAll({}, header);
  SequenceFileReader reader(file);
  EXPECT_EQ(reader.header().key_class, "scikey.AggregateKey");
  EXPECT_EQ(reader.header().value_class, "bytes");
  EXPECT_FALSE(reader.next().has_value());
}

class SequenceFileRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SequenceFileRoundTrip, RecordsSurvive) {
  const auto records = sampleRecords(300, 11);
  SequenceFileHeader header;
  header.codec = GetParam();
  const Bytes file = writeAll(records, header);
  SequenceFileReader reader(file);
  for (const auto& expected : records) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(reader.next().has_value());
}

INSTANTIATE_TEST_SUITE_P(Codecs, SequenceFileRoundTrip,
                         ::testing::Values("null", "gzipish", "bzip2ish"),
                         [](const auto& info) { return std::string(info.param); });

TEST(SequenceFileTest, SyncMarkersAppearPeriodically) {
  const auto records = sampleRecords(500, 3);
  const Bytes file = writeAll(records, SequenceFileHeader{});
  // The file must contain multiple syncs: total record payload far exceeds
  // the sync interval.
  SequenceFileReader reader(file);
  int syncs = 0;
  while (reader.seekToNextSync()) ++syncs;
  EXPECT_GT(syncs, 3);
}

TEST(SequenceFileTest, SeekToSyncRecoversAfterCorruption) {
  const auto records = sampleRecords(400, 7);
  Bytes file = writeAll(records, SequenceFileHeader{});

  // Clobber a byte early in the record area (after the ~30-byte header).
  file[100] ^= 0xFF;

  SequenceFileReader reader(file);
  std::size_t recovered = 0;
  for (;;) {
    try {
      const auto kv = reader.next();
      if (!kv) break;
      ++recovered;
    } catch (const FormatError&) {
      if (!reader.seekToNextSync()) break;
    }
  }
  // We must recover a large tail of the file without crashing.
  EXPECT_GT(recovered, records.size() / 2);
  EXPECT_LT(recovered, records.size() + 1);
}

TEST(SequenceFileTest, DifferentSeedsDifferentSyncs) {
  const auto records = sampleRecords(5, 1);
  const Bytes a = writeAll(records, SequenceFileHeader{}, 1);
  const Bytes b = writeAll(records, SequenceFileHeader{}, 2);
  EXPECT_NE(a, b);
  // But both read back fine.
  SequenceFileReader ra(a), rb(b);
  for (const auto& expected : records) {
    EXPECT_EQ(*ra.next(), expected);
    EXPECT_EQ(*rb.next(), expected);
  }
}

TEST(SequenceFileTest, WriteJobOutputsConcatenatesParts) {
  std::vector<std::vector<KeyValue>> outputs(3);
  outputs[0] = sampleRecords(10, 1);
  outputs[2] = sampleRecords(7, 2);
  Bytes file;
  MemorySink sink(file);
  writeJobOutputs(sink, outputs, SequenceFileHeader{});
  SequenceFileReader reader(file);
  std::size_t count = 0;
  while (reader.next()) ++count;
  EXPECT_EQ(count, 17u);
}

TEST(SequenceFileTest, BadMagicThrows) {
  Bytes junk = {'X', 'X', 'X', 'X', 'X', 'X', 0, 0};
  EXPECT_THROW(SequenceFileReader{junk}, FormatError);
}

}  // namespace
}  // namespace scishuffle::hadoop
