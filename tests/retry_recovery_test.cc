// The recovery layer, unit to end-to-end: retryWithPolicy / Backoff
// semantics, then the ISSUE acceptance scenario — a fault plan that corrupts
// one shuffled segment and drops one fetch must yield bit-identical job
// output with the recovery counters visible in the JSON report, and the same
// plan with retries disabled must fail with a structured error naming the
// site.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hadoop/report.h"
#include "hadoop/retry.h"
#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "testing/fault_injector.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

using scishuffle::testing::FaultKind;
using scishuffle::testing::FaultPlan;
using scishuffle::testing::FaultRule;
using scishuffle::testing::JsonParser;
using scishuffle::testing::JsonValue;
namespace site = scishuffle::testing::site;

// ---------------------------------------------------------------------------
// retryWithPolicy unit behavior

RetryPolicy enabledPolicy(int attempts = 4) {
  RetryPolicy p;
  p.enabled = true;
  p.max_attempts = attempts;
  p.base_backoff_us = 1;  // keep unit tests fast
  p.max_backoff_us = 10;
  return p;
}

TEST(RetryPolicyTest, SucceedsAfterTransientIoError) {
  int calls = 0;
  const int v = retryWithPolicy(enabledPolicy(), "unit.site", [&] {
    if (++calls < 3) throw IoError("flaky");
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, RetriesFormatErrorsToo) {
  int calls = 0;
  retryWithPolicy(enabledPolicy(), "unit.site", [&] {
    if (++calls < 2) throw FormatError("bad bytes");
  });
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicyTest, ExhaustionCarriesStructuredReport) {
  int calls = 0;
  try {
    retryWithPolicy(enabledPolicy(3), "shuffle.fetch", [&]() -> int {
      ++calls;
      throw IoError("connection reset");
    });
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(e.report().site, "shuffle.fetch");
    EXPECT_EQ(e.report().attempts, 3);
    EXPECT_NE(e.report().last_error.find("connection reset"), std::string::npos);
    const std::string what = e.what();
    EXPECT_NE(what.find("shuffle.fetch"), std::string::npos) << what;
    EXPECT_NE(what.find("3 attempts"), std::string::npos) << what;
  }
}

TEST(RetryPolicyTest, NonRetryableExceptionsPassThrough) {
  int calls = 0;
  EXPECT_THROW(retryWithPolicy(enabledPolicy(), "unit.site",
                               [&]() -> int {
                                 ++calls;
                                 throw std::logic_error("bug, not weather");
                               }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, DisabledPolicyMakesOneAttemptButStaysStructured) {
  RetryPolicy off;  // enabled = false
  int calls = 0;
  try {
    retryWithPolicy(off, "block.decode", [&] {
      ++calls;
      throw FormatError("crc mismatch");
    });
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(e.report().site, "block.decode");
    EXPECT_EQ(e.report().attempts, 1);
  }
}

TEST(RetryPolicyTest, OnRetryHookFiresPerFailedAttempt) {
  int hooks = 0;
  retryWithPolicy(
      enabledPolicy(4), "unit.site",
      [&, calls = std::make_shared<int>(0)] {
        if (++*calls < 3) throw IoError("flaky");
      },
      [&](int attempt, const std::string& err) {
        ++hooks;
        EXPECT_GE(attempt, 1);
        EXPECT_FALSE(err.empty());
      });
  EXPECT_EQ(hooks, 2);  // attempts 1 and 2 failed; no hook after success
}

TEST(BackoffTest, DeterministicGrowingAndCapped) {
  RetryPolicy p = enabledPolicy(8);
  p.base_backoff_us = 100;
  p.max_backoff_us = 1000;
  p.jitter = 0.5;
  p.seed = 99;

  Backoff a(p, "some.site");
  Backoff b(p, "some.site");
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const u64 da = a.delayUs(attempt);
    EXPECT_EQ(da, b.delayUs(attempt)) << "same seed+site must replay";
    if (attempt == 1) {
      EXPECT_EQ(da, 0u) << "first attempt never waits";
    } else {
      // Exponential base capped at max, jittered down by at most `jitter`.
      const u64 base = std::min<u64>(100u << (attempt - 2), 1000u);
      EXPECT_LE(da, base);
      EXPECT_GE(da, base / 2);
    }
  }
  // A different site walks a different jitter sequence (seeds are combined
  // with the site hash).
  Backoff other(p, "other.site");
  bool anyDiff = false;
  Backoff c(p, "some.site");
  for (int attempt = 2; attempt <= 8; ++attempt) {
    anyDiff = anyDiff || (other.delayUs(attempt) != c.delayUs(attempt));
  }
  EXPECT_TRUE(anyDiff);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: faulted jobs heal (or fail with named sites).

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

std::string toString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

i64 decodeI64(const Bytes& b) {
  MemorySource src(b);
  return readI64(src);
}

std::map<std::string, i64> countsOf(const JobResult& result) {
  std::map<std::string, i64> counts;
  for (const auto& out : result.outputs) {
    for (const auto& kv : out) counts.emplace(toString(kv.key), decodeI64(kv.value));
  }
  return counts;
}

JobResult runWordCount(JobConfig config) {
  const std::vector<std::string> vocab = {"the", "windspeed", "grid", "key",
                                          "map", "reduce",    "sci", "curve"};
  std::vector<MapTask> tasks;
  for (int m = 0; m < 4; ++m) {
    tasks.push_back(MapTask{[m, &vocab](const EmitFn& emit) {
      for (int i = 0; i < 200; ++i) {
        emit(toBytes(vocab[static_cast<std::size_t>((i * 7 + m) % 8)]), encodeI64(1));
      }
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  return runJob(config, tasks, reduce);
}

JobConfig faultedConfig(scishuffle::testing::FaultInjector* faults) {
  JobConfig config;
  config.num_reducers = 3;
  config.shuffle_pipeline = true;
  config.intermediate_codec = "gzipish";
  config.fault_injector = faults;
  config.shuffle_retry = enabledPolicy(4);
  return config;
}

TEST(RecoveryAcceptanceTest, CorruptBlockAndDroppedFetchHealBitIdentically) {
  // The ISSUE scenario: one corrupted segment + one dropped fetch.
  FaultPlan plan;
  plan.seed = 20260806;
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kCorruptBytes});
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kThrowIo});
  scishuffle::testing::FaultInjector faults(plan);

  const JobResult faulted = runWordCount(faultedConfig(&faults));
  EXPECT_EQ(faults.triggered(site::kShuffleFetch), 2u) << "both rules must have fired";

  // Bit-identical output versus the fault-free serial baseline.
  JobConfig clean;
  clean.num_reducers = 3;
  clean.intermediate_codec = "gzipish";
  const JobResult baseline = runWordCount(clean);
  EXPECT_EQ(countsOf(faulted), countsOf(baseline));

  // The recovery counters surface in the JSON report...
  const JsonValue doc = JsonParser::parse(jobReportJson(faulted));
  EXPECT_GE(doc.at("counters").at(counter::kShuffleFetchRetries).asU64(), 1u);
  EXPECT_GE(doc.at("counters").at(counter::kBlocksCorruptDetected).asU64(), 1u);
  EXPECT_GE(doc.at("counters").at(counter::kSegmentsRefetched).asU64(), 1u);
  // ...and the text report grows its recovery line.
  EXPECT_NE(jobReport(faulted).find("recovery:"), std::string::npos);
}

TEST(RecoveryAcceptanceTest, DroppedFetchWithRetriesDisabledNamesTheSite) {
  FaultPlan plan;
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kThrowIo});
  scishuffle::testing::FaultInjector faults(plan);

  JobConfig config = faultedConfig(&faults);
  config.shuffle_retry.enabled = false;
  try {
    runWordCount(config);
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(e.report().site, site::kShuffleFetch);
    EXPECT_EQ(e.report().attempts, 1);
  }
}

TEST(RecoveryAcceptanceTest, CorruptSegmentWithRetriesDisabledNamesIntegritySite) {
  FaultPlan plan;
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kCorruptBytes});
  scishuffle::testing::FaultInjector faults(plan);

  JobConfig config = faultedConfig(&faults);
  config.shuffle_retry.enabled = false;
  config.verify_fetched_segments = true;  // detect, but nothing retained to re-fetch
  try {
    runWordCount(config);
    FAIL() << "expected RetryExhaustedError";
  } catch (const RetryExhaustedError& e) {
    EXPECT_EQ(e.report().site, "segment.integrity");
    EXPECT_NE(e.report().last_error.find("no retained copy"), std::string::npos)
        << e.report().last_error;
  }
}

TEST(RecoveryAcceptanceTest, TruncatedSegmentIsRecoveredToo) {
  FaultPlan plan;
  plan.seed = 5;
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kTruncate});
  scishuffle::testing::FaultInjector faults(plan);

  const JobResult faulted = runWordCount(faultedConfig(&faults));
  JobConfig clean;
  clean.num_reducers = 3;
  clean.intermediate_codec = "gzipish";
  EXPECT_EQ(countsOf(faulted), countsOf(runWordCount(clean)));
  EXPECT_GE(faulted.counters.get(counter::kSegmentsRefetched), 1u);
}

TEST(RecoveryAcceptanceTest, DecodeTimeCorruptionHealsViaReduceReexecution) {
  // Corruption injected inside the block decoder (after fetch-time
  // verification) is seen mid-merge; the reduce task re-executes against the
  // intact stored segments.
  FaultPlan plan;
  plan.seed = 11;
  plan.rules.push_back({site::kBlockDecode, FaultKind::kCorruptBytes});
  scishuffle::testing::FaultInjector faults(plan);

  JobConfig config = faultedConfig(&faults);
  const JobResult faulted = runWordCount(config);
  EXPECT_EQ(faults.triggered(site::kBlockDecode), 1u);

  JobConfig clean;
  clean.num_reducers = 3;
  clean.intermediate_codec = "gzipish";
  EXPECT_EQ(countsOf(faulted), countsOf(runWordCount(clean)));
  EXPECT_GE(faulted.counters.get(counter::kBlocksCorruptDetected), 1u);
}

TEST(RecoveryAcceptanceTest, PublishFaultRetriesWithIntactSegments) {
  FaultPlan plan;
  plan.rules.push_back({site::kShufflePublish, FaultKind::kThrowIo});
  scishuffle::testing::FaultInjector faults(plan);

  const JobResult faulted = runWordCount(faultedConfig(&faults));
  EXPECT_EQ(faults.triggered(site::kShufflePublish), 1u);
  JobConfig clean;
  clean.num_reducers = 3;
  clean.intermediate_codec = "gzipish";
  EXPECT_EQ(countsOf(faulted), countsOf(runWordCount(clean)));
}

TEST(RecoveryAcceptanceTest, ShuffleRetryBudgetAloneEnablesReduceReexecution) {
  // With task attempts at their minimum, a corrupt block surfacing mid-merge
  // still heals: FormatError re-execution draws on the shuffle retry budget,
  // not just max_task_attempts.
  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back({site::kBlockDecode, FaultKind::kCorruptBytes});
  scishuffle::testing::FaultInjector faults(plan);

  JobConfig config = faultedConfig(&faults);
  config.max_task_attempts = 1;

  const JobResult faulted = runWordCount(config);
  EXPECT_EQ(faults.triggered(site::kBlockDecode), 1u);
  JobConfig clean;
  clean.num_reducers = 3;
  clean.intermediate_codec = "gzipish";
  EXPECT_EQ(countsOf(faulted), countsOf(runWordCount(clean)));
  EXPECT_GE(faulted.counters.get(counter::kBlocksCorruptDetected), 1u);
}

TEST(RecoveryAcceptanceTest, FaultFreeRunKeepsRecoveryCountersAtZeroAndLineAbsent) {
  const JobResult result = runWordCount(faultedConfig(nullptr));
  EXPECT_EQ(result.counters.get(counter::kShuffleFetchRetries), 0u);
  EXPECT_EQ(result.counters.get(counter::kBlocksCorruptDetected), 0u);
  EXPECT_EQ(result.counters.get(counter::kSegmentsRefetched), 0u);
  EXPECT_EQ(jobReport(result).find("recovery:"), std::string::npos);
}

}  // namespace
}  // namespace scishuffle::hadoop
