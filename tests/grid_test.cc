#include <gtest/gtest.h>

#include <map>
#include <random>

#include "grid/box.h"
#include "grid/dataset.h"
#include "grid/shape.h"

namespace scishuffle::grid {
namespace {

TEST(ShapeTest, VolumeAndStrides) {
  const Shape s({4, 5, 6});
  EXPECT_EQ(s.volume(), 120);
  EXPECT_EQ(s.rowMajorStrides(), (std::vector<i64>{30, 6, 1}));
}

TEST(ShapeTest, LinearizeRoundTrip) {
  const Shape s({3, 7, 2, 5});
  for (i64 off = 0; off < s.volume(); ++off) {
    const Coord c = s.delinearize(off);
    EXPECT_EQ(s.linearize(c), off);
  }
}

TEST(ShapeTest, OutOfBoundsThrows) {
  const Shape s({3, 3});
  EXPECT_THROW(s.linearize({3, 0}), std::logic_error);
  EXPECT_THROW(s.linearize({0, -1}), std::logic_error);
  EXPECT_THROW(s.delinearize(9), std::logic_error);
}

TEST(BoxTest, BasicGeometry) {
  const Box b({-2, 3}, {4, 5});
  EXPECT_EQ(b.volume(), 20);
  EXPECT_EQ(b.low(0), -2);
  EXPECT_EQ(b.high(0), 2);
  EXPECT_TRUE(b.contains({-2, 3}));
  EXPECT_TRUE(b.contains({1, 7}));
  EXPECT_FALSE(b.contains({2, 3}));
  EXPECT_FALSE(b.contains({0, 8}));
}

TEST(BoxTest, IntersectionMatchesThePaperExample) {
  // §IV-C: mapper for (0,0)-(9,9) produces (-1,-1)-(10,10); the neighbor for
  // (0,10)-(9,19) produces (-1,9)-(10,20); they overlap in (-1,9)-(10,10).
  const Box a = Box::fromExtents({-1, -1}, {11, 11});
  const Box b = Box::fromExtents({-1, 9}, {11, 21});
  const auto overlap = a.intersection(b);
  ASSERT_TRUE(overlap.has_value());
  EXPECT_EQ(*overlap, Box::fromExtents({-1, 9}, {11, 11}));
}

TEST(BoxTest, DisjointIntersection) {
  const Box a({0, 0}, {2, 2});
  const Box b({5, 5}, {1, 1});
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.intersection(b).has_value());
}

TEST(BoxTest, SplitAtPartitionsVolume) {
  const Box b({0, 0}, {10, 10});
  const auto [lo, hi] = b.splitAt(0, 4);
  EXPECT_EQ(lo.volume() + hi.volume(), b.volume());
  EXPECT_EQ(lo, Box({0, 0}, {4, 10}));
  EXPECT_EQ(hi, Box({4, 0}, {6, 10}));
  // Out-of-range positions clamp to an empty side.
  const auto [lo2, hi2] = b.splitAt(1, 99);
  EXPECT_EQ(lo2.volume(), 100);
  EXPECT_TRUE(hi2.empty());
}

TEST(BoxTest, CutByProducesDisjointCover) {
  const Box b({0, 0, 0}, {6, 6, 6});
  const Box cutter({2, -1, 3}, {2, 4, 10});
  const auto pieces = b.cutBy(cutter);
  i64 total = 0;
  for (const Box& p : pieces) {
    total += p.volume();
    // Each piece is entirely inside or entirely outside the cutter.
    const auto inter = p.intersection(cutter);
    if (inter.has_value()) EXPECT_EQ(inter->volume(), p.volume());
  }
  EXPECT_EQ(total, b.volume());
}

TEST(BoxTest, CutByDisjointCutterIsIdentity) {
  const Box b({0, 0}, {3, 3});
  const auto pieces = b.cutBy(Box({10, 10}, {2, 2}));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], b);
}

TEST(BoxTest, DecomposeOverlapsIsExactCover) {
  // Count per-cell coverage before and after: must match everywhere.
  const std::vector<Box> boxes = {Box({0, 0}, {4, 4}), Box({2, 2}, {4, 4}), Box({3, 0}, {2, 6}),
                                  Box({0, 0}, {4, 4})};  // includes an exact duplicate
  const auto fragments = decomposeOverlaps(boxes);

  std::map<Coord, int> expected;
  for (const Box& b : boxes) b.forEachCell([&](const Coord& c) { ++expected[c]; });
  std::map<Coord, int> actual;
  for (const auto& [frag, src] : fragments) {
    EXPECT_LT(src, boxes.size());
    frag.forEachCell([&](const Coord& c) { ++actual[c]; });
  }
  EXPECT_EQ(actual, expected);

  // Fragments from different sources are equal or disjoint (Fig. 7 property).
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    for (std::size_t j = i + 1; j < fragments.size(); ++j) {
      const auto& a = fragments[i].first;
      const auto& b = fragments[j].first;
      if (a.intersects(b)) EXPECT_EQ(a, b);
    }
  }
}

class DecomposeProperty : public ::testing::TestWithParam<u32> {};

TEST_P(DecomposeProperty, RandomBoxesDecomposeExactly) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<i64> lo(-5, 10);
  std::uniform_int_distribution<i64> len(1, 6);
  std::vector<Box> boxes;
  const int n = 2 + static_cast<int>(GetParam() % 5);
  for (int i = 0; i < n; ++i) {
    const Coord corner{lo(rng), lo(rng)};
    boxes.emplace_back(corner, std::vector<i64>{len(rng), len(rng)});
  }
  const auto fragments = decomposeOverlaps(boxes);

  std::map<Coord, int> expected;
  for (const Box& b : boxes) b.forEachCell([&](const Coord& c) { ++expected[c]; });
  std::map<Coord, int> actual;
  for (const auto& [frag, src] : fragments) {
    frag.forEachCell([&](const Coord& c) { ++actual[c]; });
  }
  EXPECT_EQ(actual, expected) << "seed " << GetParam();

  for (std::size_t i = 0; i < fragments.size(); ++i) {
    for (std::size_t j = i + 1; j < fragments.size(); ++j) {
      if (fragments[i].first.intersects(fragments[j].first)) {
        EXPECT_EQ(fragments[i].first, fragments[j].first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeProperty, ::testing::Range(0u, 16u));

TEST(BoxTest, ExpandToAlignment) {
  const Box b({-3, 5}, {4, 4});  // spans [-3,1) x [5,9)
  const Box e = b.expandToAlignment(4);
  EXPECT_EQ(e, Box::fromExtents({-4, 4}, {4, 12}));
  EXPECT_TRUE(e.containsBox(b));
  // Already-aligned boxes are unchanged.
  const Box aligned({-4, 4}, {8, 8});
  EXPECT_EQ(aligned.expandToAlignment(4), aligned);
}

TEST(BoxTest, ForEachCellIsRowMajor) {
  const Box b({1, 1}, {2, 2});
  std::vector<Coord> visited;
  b.forEachCell([&](const Coord& c) { visited.push_back(c); });
  EXPECT_EQ(visited,
            (std::vector<Coord>{{1, 1}, {1, 2}, {2, 1}, {2, 2}}));
}

TEST(DatasetTest, VariablesAndTypes) {
  Dataset ds;
  auto& wind = ds.addVariable("windspeed1", DataType::kFloat32, Shape({8, 8}));
  ds.addVariable("pressure", DataType::kFloat64, Shape({4}));
  EXPECT_THROW(ds.addVariable("windspeed1", DataType::kInt32, Shape({1})), std::logic_error);
  EXPECT_EQ(ds.variableIndex("windspeed1"), 0);
  EXPECT_EQ(ds.variableIndex("pressure"), 1);
  EXPECT_THROW(ds.variableIndex("nope"), std::out_of_range);

  wind.setFloat32({3, 4}, 7.5f);
  EXPECT_EQ(ds.variable("windspeed1").float32At({3, 4}), 7.5f);
  EXPECT_THROW(wind.int32At({0, 0}), std::logic_error);
}

TEST(DatasetTest, SerializedValueIsBigEndian) {
  Dataset ds;
  auto& v = ds.addVariable("v", DataType::kInt32, Shape({2}));
  v.setInt32({1}, 0x01020304);
  const Bytes b = v.serializedValueAt({1});
  EXPECT_EQ(b, (Bytes{1, 2, 3, 4}));
}

TEST(GeneratorTest, LinearFillMatchesOffsets) {
  Dataset ds;
  auto& v = ds.addVariable("v", DataType::kInt32, Shape({5, 7}));
  gen::fillLinear(v);
  EXPECT_EQ(v.int32At({0, 0}), 0);
  EXPECT_EQ(v.int32At({2, 3}), 2 * 7 + 3);
}

TEST(GeneratorTest, WindspeedIsSmoothAndDeterministic) {
  Dataset ds;
  auto& a = ds.addVariable("a", DataType::kFloat32, Shape({32, 32}));
  auto& b = ds.addVariable("b", DataType::kFloat32, Shape({32, 32}));
  gen::fillWindspeed(a, 7);
  gen::fillWindspeed(b, 7);
  EXPECT_EQ(a.raw(), b.raw());
  // Neighboring cells differ by a bounded amount (smoothness).
  for (i64 x = 0; x < 32; ++x) {
    for (i64 y = 1; y < 32; ++y) {
      EXPECT_LT(std::abs(a.float32At({x, y}) - a.float32At({x, y - 1})), 1.5f);
    }
  }
}

}  // namespace
}  // namespace scishuffle::grid
