// Randomized property sweep (seeded via SCISHUFFLE_PROP_SEED, see
// tests/proptest.h): codec round-trip laws over adversarial byte streams,
// single-bit-flip fuzzing of the SBF1 container, and split-then-merge
// identity for aggregate keys over random Z-order range sets.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "compress/block_format.h"
#include "compress/codec.h"
#include "proptest.h"
#include "scikey/aggregate_key.h"
#include "sfc/zorder.h"
#include "testing_support.h"
#include "transform/transform_codec.h"

namespace scishuffle {
namespace {

using scishuffle::testing::adversarialBytes;
using scishuffle::testing::forAll;
using scishuffle::testing::propertySeed;

std::vector<std::string> allCodecNames() {
  registerBuiltinCodecs();
  registerTransformCodecs();
  return CodecRegistry::instance().names();
}

TEST(CodecPropertyTest, RoundTripLawHoldsForEveryRegisteredCodec) {
  for (const std::string& name : allCodecNames()) {
    const auto codec = CodecRegistry::instance().create(name);
    forAll("codec-roundtrip:" + name, propertySeed(), 30,
           [](std::mt19937_64& rng) { return adversarialBytes(rng); },
           [&](const Bytes& input) {
             return codec->decompress(codec->compress(input)) == input;
           });
  }
}

TEST(CodecPropertyTest, BlockContainerRoundTripsWithTinyBlocks) {
  // Small blocks force multi-block streams, exercising frame boundaries and
  // the v2 trailer on every input.
  for (const std::string& name : allCodecNames()) {
    const auto codec = CodecRegistry::instance().create(name);
    forAll("sbf1-roundtrip:" + name, propertySeed() ^ 0x5bf1, 20,
           [](std::mt19937_64& rng) { return adversarialBytes(rng, 2048); },
           [&](const Bytes& input) {
             const Bytes stream = blockCompress(input, codec.get(), /*blockBytes=*/181);
             return blockDecompressAll(stream, codec.get()) == input;
           });
  }
}

TEST(CodecPropertyTest, SingleBitFlipIsDetectedOrRoundTrips) {
  // Flip one bit anywhere in an SBF1 stream: the reader must either throw
  // FormatError or still decode to the original bytes — never silently
  // return different data. (CRC32 catches payload flips; the v2 trailer
  // catches forged end markers; header flips fail structurally.)
  registerBuiltinCodecs();
  for (const std::string& name : {std::string("null"), std::string("gzipish"),
                                  std::string("bzip2ish")}) {
    const auto codec = CodecRegistry::instance().create(name);
    std::mt19937_64 rng(propertySeed() ^ 0xf11b);
    for (int iter = 0; iter < 8; ++iter) {
      const Bytes input = adversarialBytes(rng, 1024);
      const Bytes stream = blockCompress(input, codec.get(), /*blockBytes=*/97);
      std::uniform_int_distribution<std::size_t> pickPos(0, stream.size() - 1);
      std::uniform_int_distribution<int> pickBit(0, 7);
      for (int flip = 0; flip < 48; ++flip) {
        const std::size_t pos = pickPos(rng);
        const int bit = pickBit(rng);
        Bytes mutated = stream;
        mutated[pos] ^= static_cast<u8>(1u << bit);
        try {
          const Bytes decoded = blockDecompressAll(mutated, codec.get());
          EXPECT_EQ(decoded, input)
              << "codec " << name << ": flip of bit " << bit << " at byte " << pos
              << " of " << stream.size() << " went undetected AND changed the data"
              << " (seed " << (propertySeed() ^ 0xf11b) << ")";
        } catch (const FormatError&) {
          // Detected — the acceptable outcome.
        }
      }
    }
  }
}

TEST(CodecPropertyTest, TruncationAtEveryPointIsDetected) {
  registerBuiltinCodecs();
  const auto codec = CodecRegistry::instance().create("gzipish");
  std::mt19937_64 rng(propertySeed() ^ 0x7276);
  const Bytes input = scishuffle::testing::randomBytes(600, static_cast<u32>(rng()));
  const Bytes stream = blockCompress(input, codec.get(), /*blockBytes=*/128);
  // Every proper prefix must fail loudly: with the v2 trailer there is no
  // cut point that still looks like a complete stream.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    const Bytes prefix(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(blockDecompressAll(prefix, codec.get()), FormatError) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// Aggregate-key splitting over random Z-order range sets.

struct RangeSet {
  sfc::CurveIndex index_count = 0;
  std::size_t value_size = 0;
  // (key, packed blob) records, blob filled with position-dependent bytes so
  // any misrouted cell shows up as a byte mismatch.
  std::vector<std::pair<scikey::AggregateKey, Bytes>> records;
};

RangeSet randomZOrderRanges(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> bits(2, 5);
  std::uniform_int_distribution<int> dims(1, 3);
  const sfc::ZOrderCurve curve(dims(rng), bits(rng));
  RangeSet set;
  set.index_count = curve.indexCount();
  set.value_size = 1 + rng() % 6;

  std::uniform_int_distribution<int> howMany(1, 8);
  const int n = howMany(rng);
  for (int i = 0; i < n; ++i) {
    const u64 maxStart = static_cast<u64>(set.index_count) - 1;
    const u64 start = rng() % (maxStart + 1);
    const u64 maxCount = static_cast<u64>(set.index_count) - start;
    const u64 count = 1 + rng() % maxCount;
    scikey::AggregateKey key{static_cast<i32>(rng() % 4), start, count};
    Bytes blob(static_cast<std::size_t>(count) * set.value_size);
    for (std::size_t b = 0; b < blob.size(); ++b) {
      blob[b] = static_cast<u8>((start * set.value_size + b) & 0xff);
    }
    set.records.emplace_back(key, std::move(blob));
  }
  return set;
}

TEST(KeySplitPropertyTest, SplitThenConcatenateIsIdentity) {
  std::mt19937_64 rng(propertySeed() ^ 0x5e17);
  for (int iter = 0; iter < 200; ++iter) {
    const RangeSet set = randomZOrderRanges(rng);
    for (const auto& [key, blob] : set.records) {
      if (key.count < 2) continue;  // nothing to split
      const sfc::CurveIndex at = key.start + 1 + rng() % (key.count - 1);
      const auto [left, right] = scikey::splitAggregateRecord(key, blob, at, set.value_size);
      const auto leftKey = scikey::deserializeAggregateKey(left.key);
      const auto rightKey = scikey::deserializeAggregateKey(right.key);

      // The halves tile the original range exactly...
      EXPECT_EQ(leftKey.var, key.var);
      EXPECT_EQ(rightKey.var, key.var);
      EXPECT_TRUE(leftKey.start == key.start);
      EXPECT_TRUE(leftKey.end() == at);
      EXPECT_TRUE(rightKey.start == at);
      EXPECT_TRUE(rightKey.end() == key.end());
      EXPECT_EQ(leftKey.count + rightKey.count, key.count);

      // ...and merging (concatenating the blobs) restores the original.
      Bytes merged = left.value;
      merged.insert(merged.end(), right.value.begin(), right.value.end());
      EXPECT_EQ(merged, blob);
      EXPECT_EQ(left.value.size(), static_cast<std::size_t>(leftKey.count) * set.value_size);
    }
  }
}

TEST(KeySplitPropertyTest, RouterSplitThenMergeIsIdentity) {
  std::mt19937_64 rng(propertySeed() ^ 0x2077);
  for (int iter = 0; iter < 150; ++iter) {
    const RangeSet set = randomZOrderRanges(rng);
    std::uniform_int_distribution<int> parts(1, 7);
    const int numPartitions = parts(rng);
    const auto router = scikey::aggregateRangeRouter(set.index_count, set.value_size, nullptr);

    for (const auto& [key, blob] : set.records) {
      auto routed = router(hadoop::KeyValue{scikey::serializeAggregateKey(key), blob},
                           numPartitions);
      ASSERT_FALSE(routed.empty());

      // Pieces arrive in curve order and tile [start, end) with no gap,
      // overlap, or partition straddle; concatenation restores the record.
      sfc::CurveIndex cursor = key.start;
      Bytes merged;
      int prevPartition = -1;
      for (const auto& [partition, kv] : routed) {
        const auto piece = scikey::deserializeAggregateKey(kv.key);
        EXPECT_EQ(piece.var, key.var);
        EXPECT_TRUE(piece.start == cursor) << "gap or overlap at piece boundary";
        EXPECT_GE(piece.count, 1u);
        EXPECT_GT(partition, prevPartition - 1);  // non-decreasing partitions
        prevPartition = partition;
        EXPECT_EQ(scikey::rangePartition(piece.start, set.index_count, numPartitions), partition);
        EXPECT_EQ(scikey::rangePartition(piece.end() - 1, set.index_count, numPartitions),
                  partition)
            << "piece straddles a partition boundary";
        EXPECT_EQ(kv.value.size(), static_cast<std::size_t>(piece.count) * set.value_size);
        merged.insert(merged.end(), kv.value.begin(), kv.value.end());
        cursor = piece.end();
      }
      EXPECT_TRUE(cursor == key.end()) << "pieces do not cover the range";
      EXPECT_EQ(merged, blob);
    }
  }
}

TEST(KeySplitPropertyTest, RouterIsANoOpForSinglePartition) {
  std::mt19937_64 rng(propertySeed() ^ 0x1);
  for (int iter = 0; iter < 50; ++iter) {
    const RangeSet set = randomZOrderRanges(rng);
    const auto router = scikey::aggregateRangeRouter(set.index_count, set.value_size, nullptr);
    for (const auto& [key, blob] : set.records) {
      auto routed = router(hadoop::KeyValue{scikey::serializeAggregateKey(key), blob}, 1);
      ASSERT_EQ(routed.size(), 1u);
      EXPECT_EQ(routed[0].first, 0);
      EXPECT_EQ(scikey::deserializeAggregateKey(routed[0].second.key), key);
      EXPECT_EQ(routed[0].second.value, blob);
    }
  }
}

}  // namespace
}  // namespace scishuffle
