#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sfc/clustering.h"
#include "sfc/curve.h"

namespace scishuffle::sfc {
namespace {

// (kind, dims, bits)
using CurveCase = std::tuple<CurveKind, int, int>;

class CurveBijection : public ::testing::TestWithParam<CurveCase> {};

TEST_P(CurveBijection, ExhaustiveOverSmallCubes) {
  const auto& [kind, dims, bits] = GetParam();
  const auto curve = makeCurve(kind, dims, bits);
  const u64 cells = u64{1} << (dims * bits);
  ASSERT_LE(cells, u64{1} << 20) << "test cube too large";

  std::set<std::vector<u32>> seen;
  std::vector<u32> coords(static_cast<std::size_t>(dims));
  for (u64 idx = 0; idx < cells; ++idx) {
    curve->decode(static_cast<CurveIndex>(idx), coords);
    for (const u32 c : coords) ASSERT_LT(c, u32{1} << bits);
    ASSERT_TRUE(seen.insert(coords).second) << "decode not injective at " << idx;
    ASSERT_EQ(curve->encode(coords), static_cast<CurveIndex>(idx)) << "roundtrip at " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallCubes, CurveBijection,
    ::testing::Values(CurveCase{CurveKind::kZOrder, 1, 6}, CurveCase{CurveKind::kZOrder, 2, 5},
                      CurveCase{CurveKind::kZOrder, 3, 4}, CurveCase{CurveKind::kZOrder, 4, 3},
                      CurveCase{CurveKind::kHilbert, 1, 6}, CurveCase{CurveKind::kHilbert, 2, 5},
                      CurveCase{CurveKind::kHilbert, 3, 4}, CurveCase{CurveKind::kHilbert, 4, 3},
                      CurveCase{CurveKind::kGray, 2, 5}, CurveCase{CurveKind::kGray, 3, 4},
                      CurveCase{CurveKind::kGray, 4, 3},
                      CurveCase{CurveKind::kRowMajor, 2, 5}, CurveCase{CurveKind::kRowMajor, 3, 4}),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      return curveKindName(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "b" + std::to_string(std::get<2>(info.param));
    });

class CurveContinuity : public ::testing::TestWithParam<CurveCase> {};

TEST_P(CurveContinuity, HilbertNeighborsDifferByOneStep) {
  const auto& [kind, dims, bits] = GetParam();
  const auto curve = makeCurve(kind, dims, bits);
  const u64 cells = u64{1} << (dims * bits);
  std::vector<u32> prev(static_cast<std::size_t>(dims));
  std::vector<u32> cur(static_cast<std::size_t>(dims));
  curve->decode(0, prev);
  for (u64 idx = 1; idx < cells; ++idx) {
    curve->decode(static_cast<CurveIndex>(idx), cur);
    u64 manhattan = 0;
    for (int d = 0; d < dims; ++d) {
      const i64 diff = static_cast<i64>(cur[static_cast<std::size_t>(d)]) -
                       static_cast<i64>(prev[static_cast<std::size_t>(d)]);
      manhattan += static_cast<u64>(diff < 0 ? -diff : diff);
    }
    ASSERT_EQ(manhattan, 1u) << "Hilbert discontinuity at index " << idx;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Hilbert, CurveContinuity,
                         ::testing::Values(CurveCase{CurveKind::kHilbert, 2, 5},
                                           CurveCase{CurveKind::kHilbert, 3, 3},
                                           CurveCase{CurveKind::kHilbert, 4, 2}),
                         [](const ::testing::TestParamInfo<CurveCase>& info) {
                           return "d" + std::to_string(std::get<1>(info.param)) + "b" +
                                  std::to_string(std::get<2>(info.param));
                         });

TEST(ZOrderTest, KnownPattern2D) {
  // Classic 2x2 Z: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3 with dim 0 in the
  // higher lane (dimension 0 owns the least significant bit... verify the
  // convention we chose: bit of dim d lands at position b*dims+d).
  const auto curve = makeCurve(CurveKind::kZOrder, 2, 1);
  const std::vector<u32> c00{0, 0}, c01{0, 1}, c10{1, 0}, c11{1, 1};
  EXPECT_EQ(curve->encode(c00), 0u);
  EXPECT_EQ(curve->encode(c10), 1u);  // dim 0 = LSB lane
  EXPECT_EQ(curve->encode(c01), 2u);
  EXPECT_EQ(curve->encode(c11), 3u);
}

TEST(RowMajorTest, LastDimensionIsContiguous) {
  const auto curve = makeCurve(CurveKind::kRowMajor, 2, 4);
  const std::vector<u32> a{3, 5}, b{3, 6};
  EXPECT_EQ(curve->encode(b), curve->encode(a) + 1);
}

TEST(ClusteringTest, FullRowIsOneRunUnderRowMajor) {
  const auto curve = makeCurve(CurveKind::kRowMajor, 2, 4);
  const std::vector<u32> corner{7, 0}, size{1, 16};
  const auto ranges = rangesForBox(*curve, corner, size);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].last - ranges[0].first, 16u);
}

TEST(ClusteringTest, AlignedQuadrantIsOneRunUnderZOrder) {
  const auto curve = makeCurve(CurveKind::kZOrder, 2, 4);
  const std::vector<u32> corner{8, 8}, size{8, 8};
  const auto ranges = rangesForBox(*curve, corner, size);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].last - ranges[0].first, 64u);
}

TEST(ClusteringTest, RangesPartitionTheBox) {
  for (const CurveKind kind : {CurveKind::kZOrder, CurveKind::kHilbert, CurveKind::kRowMajor}) {
    const auto curve = makeCurve(kind, 3, 4);
    const std::vector<u32> corner{3, 1, 5}, size{4, 7, 3};
    const auto ranges = rangesForBox(*curve, corner, size);
    u64 covered = 0;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_LT(ranges[i].first, ranges[i].last);
      if (i > 0) EXPECT_GT(ranges[i].first, ranges[i - 1].last);  // gaps between runs
      covered += static_cast<u64>(ranges[i].last - ranges[i].first);
    }
    EXPECT_EQ(covered, 4u * 7u * 3u) << curveKindName(kind);
  }
}

TEST(ClusteringTest, HilbertClustersAtLeastAsWellAsZOrder) {
  // Moon et al.'s headline: Hilbert needs fewer runs per query box.
  const auto z = makeCurve(CurveKind::kZOrder, 2, 6);
  const auto h = makeCurve(CurveKind::kHilbert, 2, 6);
  const std::vector<u32> boxSize{8, 8};
  const double zRuns = meanClusterCount(*z, boxSize, 200, 42);
  const double hRuns = meanClusterCount(*h, boxSize, 200, 42);
  EXPECT_LE(hRuns, zRuns);
}

TEST(CurveTest, NamesRoundTrip) {
  for (const CurveKind kind :
       {CurveKind::kZOrder, CurveKind::kHilbert, CurveKind::kGray, CurveKind::kRowMajor}) {
    EXPECT_EQ(curveKindFromName(curveKindName(kind)), kind);
  }
  EXPECT_THROW(curveKindFromName("peano"), std::out_of_range);
}

TEST(CurveTest, ToStringHandles128Bits) {
  EXPECT_EQ(toString(0), "0");
  EXPECT_EQ(toString(1234567), "1234567");
  const CurveIndex big = (CurveIndex{1} << 100);
  EXPECT_EQ(toString(big), "1267650600228229401496703205376");
}

}  // namespace
}  // namespace scishuffle::sfc
