#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "io/thread_pool.h"

namespace scishuffle {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ConcurrencyIsBoundedBySlots) {
  constexpr int kSlots = 3;
  ThreadPool pool(kSlots);
  std::atomic<int> inFlight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      const int now = inFlight.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      inFlight.fetch_sub(1);
    });
  }
  pool.wait();
  EXPECT_LE(peak.load(), kSlots);
  EXPECT_GE(peak.load(), 2);  // it did actually run in parallel
}

TEST(ThreadPoolTest, TasksCanSubmitWorkIndirectly) {
  // Destructor drains outstanding work even without an explicit wait().
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SingleSlotIsSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.submit([&order, i] { order.push_back(i); });  // safe: one worker
  }
  pool.wait();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, SubmitTaskReturnsResultsAndExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submitTask([] { return 41 + 1; });
  auto bad = pool.submitTask([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

}  // namespace
}  // namespace scishuffle
