// Tests for the continuous-telemetry layer (ctest label: tsan): gauge
// registry summing and RAII unregistration, sampler lifecycle (zero-interval
// no-op, final-sample-on-stop, stop/teardown races), counter-event timestamp
// monotonicity, the metrics JSONL round trip through `stat`, and the
// disabled-path overhead smoke enforced by CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "obs/metrics_stream.h"
#include "obs/sampler.h"
#include "obs/stat.h"
#include "obs/trace.h"

namespace scishuffle::obs {
namespace {

std::filesystem::path tempFile(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "scishuffle_sampler_test";
  std::filesystem::create_directories(dir);
  return dir / name;
}

// ---------------------------------------------------------------- registry

TEST(GaugeRegistryTest, SameNameSourcesAreSummed) {
  GaugeRegistry registry;
  auto a = registry.add("pool.depth", [] { return u64{3}; });
  auto b = registry.add("pool.depth", [] { return u64{4}; });
  auto c = registry.add("other", [] { return u64{9}; });
  const auto sample = registry.sample();
  EXPECT_EQ(sample.at("pool.depth"), 7u);
  EXPECT_EQ(sample.at("other"), 9u);
  EXPECT_EQ(registry.sourceCount(), 3u);
}

TEST(GaugeRegistryTest, RegistrationUnregistersOnDestructionAndMove) {
  GaugeRegistry registry;
  {
    auto a = registry.add("g", [] { return u64{1}; });
    EXPECT_EQ(registry.sourceCount(), 1u);
    GaugeRegistration moved = std::move(a);  // ownership transfers, no double remove
    EXPECT_EQ(registry.sourceCount(), 1u);
    GaugeRegistration assigned;
    assigned = std::move(moved);
    EXPECT_EQ(registry.sourceCount(), 1u);
  }
  EXPECT_EQ(registry.sourceCount(), 0u);
  EXPECT_TRUE(registry.sample().empty());
}

TEST(GaugeRegistryTest, UnregistrationBlocksOutSampling) {
  // A component may tear down its gauge source while the sampler thread is
  // mid-loop; the registry lock makes the two strictly ordered, so the
  // callback can never observe destroyed state. Hammer the interleaving.
  GaugeRegistry registry;
  std::atomic<bool> stop{false};
  std::thread samplerThread([&] {
    while (!stop.load(std::memory_order_relaxed)) (void)registry.sample();
  });
  for (int i = 0; i < 200; ++i) {
    auto owner = std::make_unique<std::atomic<u64>>(u64{42});
    auto reg = registry.add("transient", [p = owner.get()] {
      return p->load(std::memory_order_relaxed);
    });
    reg = GaugeRegistration();  // unregister BEFORE the owner dies
    owner.reset();
  }
  stop.store(true, std::memory_order_relaxed);
  samplerThread.join();
  EXPECT_EQ(registry.sourceCount(), 0u);
}

// ---------------------------------------------------------------- sampler

TEST(SamplerTest, ZeroIntervalIsAHardNoOp) {
  GaugeRegistry registry;
  Sampler sampler(0, registry, nullptr, nullptr);
  sampler.start();
  EXPECT_FALSE(sampler.running());
  sampler.stop();
  EXPECT_EQ(sampler.sampleCount(), 0u);
  EXPECT_TRUE(sampler.rollups().empty());
}

TEST(SamplerTest, RecordsAtLeastTwoSamplesAndRollups) {
  GaugeRegistry registry;
  auto g = registry.add("test.constant", [] { return u64{7}; });
  Sampler sampler(1, registry, nullptr, nullptr);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  // t≈0 baseline sample plus the final sample in stop().
  EXPECT_GE(sampler.sampleCount(), 2u);

  const auto rollups = sampler.rollups();
  ASSERT_EQ(rollups.count("test.constant"), 1u);
  const GaugeRollup& r = rollups.at("test.constant");
  EXPECT_EQ(r.max, 7u);
  EXPECT_DOUBLE_EQ(r.mean(), 7.0);
  EXPECT_EQ(r.samples, sampler.sampleCount());
  // The sampler injects the RSS gauge itself.
  ASSERT_EQ(rollups.count(gauge::kProcessRssBytes), 1u);
  EXPECT_GT(rollups.at(gauge::kProcessRssBytes).max, 0u);
}

TEST(SamplerTest, StopIsIdempotentAndRacesSafelyWithTeardown) {
  for (int round = 0; round < 20; ++round) {
    GaugeRegistry registry;
    auto g = registry.add("g", [] { return u64{1}; });
    auto sampler = std::make_unique<Sampler>(1, registry, nullptr, nullptr);
    sampler->start();
    std::thread stopper([&] { sampler->stop(); });
    sampler->stop();  // races the stopper thread; one wins, one no-ops
    stopper.join();
    const u64 count = sampler->sampleCount();
    EXPECT_GE(count, 2u);
    sampler.reset();  // ~Sampler calls stop() a third time: still a no-op
  }
}

TEST(SamplerTest, CounterEventTimestampsAreMonotonic) {
  GaugeRegistry registry;
  std::atomic<u64> value{0};
  auto g = registry.add("ramp", [&] { return value.fetch_add(1, std::memory_order_relaxed); });
  TraceRecorder recorder;
  Sampler sampler(1, registry, &recorder, nullptr);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sampler.stop();

  const auto counters = recorder.counterSamples();
  ASSERT_GE(counters.size(), 4u);  // >= 2 samples x 2 gauges (ramp + rss)
  u64 lastTs = 0;
  for (const auto& c : counters) {
    EXPECT_GE(c.ts_us, lastTs) << "counter events must be time-ordered";
    lastTs = c.ts_us;
  }
  // All gauges of one snapshot share a single timestamp.
  std::map<u64, std::set<std::string>> byTs;
  for (const auto& c : counters) byTs[c.ts_us].insert(c.name);
  for (const auto& [ts, names] : byTs) {
    EXPECT_GE(names.size(), 2u) << "sample at ts=" << ts << " lost a gauge";
  }
}

// ---------------------------------------------------------------- stream

TEST(MetricsStreamTest, JsonlRoundTripsThroughStat) {
  const auto path = tempFile("roundtrip.jsonl");
  GaugeRegistry registry;
  std::atomic<u64> depth{0};
  auto g = registry.add("queue.depth", [&] { return depth.load(std::memory_order_relaxed); });
  {
    MetricsStream stream(path, 1);
    Sampler sampler(1, registry, nullptr, &stream);
    sampler.start();
    depth.store(5, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    depth.store(2, std::memory_order_relaxed);
    stream.writeEvent(event::kShuffleBackpressureWait, "shuffle.fetch", 123);
    sampler.stop();
    stream.writeSummary(sampler.rollups());
  }

  const MetricsSummary summary = summarizeMetricsFile(path);
  EXPECT_EQ(summary.schema, kMetricsSchema);
  EXPECT_EQ(summary.interval_ms, 1u);
  EXPECT_GE(summary.samples, 2u);
  EXPECT_EQ(summary.events, 1u);
  EXPECT_EQ(summary.skipped_lines, 0u);
  ASSERT_EQ(summary.gauges.count("queue.depth"), 1u);
  EXPECT_EQ(summary.gauges.at("queue.depth").peak, 5u);
  ASSERT_EQ(summary.event_counts.count(event::kShuffleBackpressureWait), 1u);
  EXPECT_EQ(summary.event_counts.at(event::kShuffleBackpressureWait), 1u);

  std::ostringstream os;
  renderMetricsSummary(summary, os);
  EXPECT_NE(os.str().find("peak RSS"), std::string::npos);
  EXPECT_NE(os.str().find("queue.depth"), std::string::npos);
}

TEST(MetricsStreamTest, TruncatedFileSummarizesWithSkippedLines) {
  const auto path = tempFile("truncated.jsonl");
  {
    MetricsStream stream(path, 2);
    stream.writeSample({{"g", 1}});
    stream.writeSample({{"g", 9}});
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"sample\",\"ts_us\":99,\"gau";  // crash mid-line
  }
  const MetricsSummary summary = summarizeMetricsFile(path);
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_EQ(summary.skipped_lines, 1u);
  EXPECT_EQ(summary.gauges.at("g").peak, 9u);
}

TEST(MetricsStreamTest, EmitEventReachesOnlyTheActiveStream) {
  const auto path = tempFile("events.jsonl");
  emitEvent("ignored.event", "nowhere", 1);  // no active stream: no-op
  {
    MetricsStream stream(path, 0);
    setActiveMetrics(&stream);
    emitEvent(event::kTaskRetry, "map_task", 2);
    emitEvent(event::kTaskRetry, "map_task", 3);
    setActiveMetrics(nullptr);
    emitEvent("ignored.event", "nowhere", 4);  // cleared: no-op again
    EXPECT_EQ(stream.eventCounts().at(event::kTaskRetry), 2u);
  }
  const MetricsSummary summary = summarizeMetricsFile(path);
  EXPECT_EQ(summary.events, 2u);
  EXPECT_EQ(summary.event_counts.count("ignored.event"), 0u);
}

// ---------------------------------------------------------------- overhead

TEST(SamplerOverheadSmoke, DisabledTelemetryStaysInsideTheTracingBudget) {
  // The disabled path of emitEvent() is one relaxed atomic load — the same
  // budget the tracing layer promises (< 2% on the shuffle bench, see
  // docs/OBSERVABILITY.md). 1M calls in well under a second catches any
  // accidental lock, allocation, or I/O sneaking onto the disabled path;
  // the bound is deliberately loose so slow CI boxes never flake.
  ASSERT_EQ(activeMetrics(), nullptr);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000'000; ++i) {
    emitEvent(event::kShuffleFetchRetry, "shuffle.fetch", static_cast<u64>(i));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000)
      << "disabled emitEvent() must stay a single relaxed load";
}

// ---------------------------------------------------------------- end to end

TEST(SamplerEndToEnd, RunJobStreamsMetricsAndMergesRollups) {
  const auto path = tempFile("job.jsonl");
  std::vector<hadoop::MapTask> tasks;
  for (int m = 0; m < 2; ++m) {
    tasks.push_back(hadoop::MapTask{[m](const hadoop::EmitFn& emit) {
      for (int i = 0; i < 200; ++i) {
        Bytes key{static_cast<u8>('a' + (i + m) % 4)};
        Bytes value;
        MemorySink sink(value);
        writeI64(sink, 1);
        emit(std::move(key), std::move(value));
      }
    }});
  }
  const hadoop::ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values,
                                     const hadoop::EmitFn& emit) {
    emit(key, values.front());
  };

  hadoop::JobConfig config;
  config.num_reducers = 2;
  config.sample_interval_ms = 1;
  config.metrics_path = path;
  const auto result = hadoop::runJob(config, tasks, reduce);

  // Rollups merged into telemetry (even without histograms).
  ASSERT_EQ(result.telemetry.gauges.count("process.rss_bytes.max"), 1u);
  EXPECT_GT(result.telemetry.gauges.at("process.rss_bytes.max"), 0u);
  EXPECT_EQ(result.telemetry.gauges.count("process.rss_bytes.mean"), 1u);

  // The stream summarizes, with the sampler's >= 2 guaranteed samples.
  const MetricsSummary summary = summarizeMetricsFile(path);
  EXPECT_GE(summary.samples, 2u);
  EXPECT_EQ(summary.gauges.count(gauge::kProcessRssBytes), 1u);

  // A config that never asked for telemetry produces none of it.
  hadoop::JobConfig off;
  off.num_reducers = 2;
  const auto quiet = hadoop::runJob(off, tasks, reduce);
  EXPECT_EQ(quiet.telemetry.gauges.count("process.rss_bytes.max"), 0u);
}

}  // namespace
}  // namespace scishuffle::obs
