// Equivalence proofs for the SIMD kernel layer: every dispatched kernel in
// src/io/simd.h must agree byte-for-byte with its scalar reference on random
// and adversarial inputs (the contract docs/PERFORMANCE.md documents).
#include "io/simd.h"

#include <gtest/gtest.h>

#include "io/crc32.h"
#include "proptest.h"

namespace scishuffle {
namespace {

using testing::adversarialBytes;
using testing::forAll;
using testing::propertySeed;

TEST(SimdMatchLength, KnownPrefixes) {
  const Bytes a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Bytes b = a;
  EXPECT_EQ(simd::matchLength(a.data(), b.data(), a.size()), a.size());
  EXPECT_EQ(simd::matchLength(a.data(), b.data(), 0u), 0u);
  b[0] = 99;
  EXPECT_EQ(simd::matchLength(a.data(), b.data(), a.size()), 0u);
  b = a;
  b[9] = 99;
  EXPECT_EQ(simd::matchLength(a.data(), b.data(), a.size()), 9u);
  b = a;
  b[8] = 99;  // mismatch exactly at the word boundary
  EXPECT_EQ(simd::matchLength(a.data(), b.data(), a.size()), 8u);
}

TEST(SimdMatchLength, EquivalentToScalarOnAdversarialPairs) {
  forAll(
      "matchLength == matchLengthScalar", propertySeed(), 300,
      [](std::mt19937_64& rng) {
        // A pair packed into one vector: first half vs second half, with the
        // second half copied from the first up to a random divergence point
        // so long prefixes (the SWAR fast path) actually occur.
        Bytes buf = adversarialBytes(rng, 2048);
        if (buf.size() < 2) buf.resize(2, 0);
        const std::size_t half = buf.size() / 2;
        const std::size_t diverge = rng() % (half + 1);
        for (std::size_t i = 0; i < diverge; ++i) buf[half + i] = buf[i];
        return buf;
      },
      [](const Bytes& buf) {
        const std::size_t half = buf.size() / 2;
        for (std::size_t maxLen : {std::size_t{0}, half / 2, half}) {
          if (simd::matchLength(buf.data(), buf.data() + half, maxLen) !=
              simd::matchLengthScalar(buf.data(), buf.data() + half, maxLen)) {
            return false;
          }
        }
        return true;
      });
}

TEST(SimdByteSubtract, KnownValues) {
  const Bytes src = {0, 1, 2, 0xFF, 0x80};
  Bytes dst(src.size());
  simd::byteSubtractFrom(1, src.data(), dst.data(), src.size());
  EXPECT_EQ(dst, (Bytes{1, 0, 0xFF, 2, 0x81}));
}

TEST(SimdByteSubtract, EquivalentToScalarOnAdversarialInputs) {
  forAll(
      "byteSubtractFrom == byteSubtractFromScalar", propertySeed(), 300,
      [](std::mt19937_64& rng) { return adversarialBytes(rng, 4096); },
      [](const Bytes& src) {
        // Odd lengths exercise the scalar tail after the 16-wide loop; try a
        // few x values including the wraparound-heavy ones.
        Bytes fast(src.size());
        Bytes ref(src.size());
        for (const u8 x : {u8{0}, u8{1}, u8{0x7F}, u8{0xFF}}) {
          simd::byteSubtractFrom(x, src.data(), fast.data(), src.size());
          simd::byteSubtractFromScalar(x, src.data(), ref.data(), src.size());
          if (fast != ref) return false;
        }
        return true;
      });
}

TEST(SimdCrc32, SliceBy8MatchesBytewiseReference) {
  forAll(
      "crc32 (slice-by-8) == crc32Reference", propertySeed(), 300,
      [](std::mt19937_64& rng) { return adversarialBytes(rng, 8192); },
      [](const Bytes& data) { return crc32(data) == crc32Reference(data); });
}

TEST(SimdCrc32, IncrementalUpdatesMatchOneShot) {
  forAll(
      "chunked Crc32::update == one-shot", propertySeed(), 100,
      [](std::mt19937_64& rng) { return adversarialBytes(rng, 4096); },
      [](const Bytes& data) {
        Crc32 crc;
        // Uneven chunks keep the slice-by-8 loop entering and leaving its
        // 8-byte alignment in every phase.
        std::size_t pos = 0;
        std::size_t step = 1;
        while (pos < data.size()) {
          const std::size_t take = std::min(step, data.size() - pos);
          crc.update(ByteSpan(data.data() + pos, take));
          pos += take;
          step = step * 2 + 1;
        }
        return crc.value() == crc32Reference(data);
      });
}

TEST(SimdBackend, NamesTheCompiledBackend) {
  const std::string backend = simd::kBackendName;
  EXPECT_TRUE(backend == "sse2" || backend == "neon" || backend == "scalar") << backend;
}

}  // namespace
}  // namespace scishuffle
