// Wire-frame parser hardening: round-trips, then the adversarial side —
// random garbage, every possible truncation, every possible single-bit flip,
// and forged length fields. The decoder's contract: structured FormatError on
// anything malformed, never an allocation larger than the input.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "proptest.h"

namespace {

using namespace scishuffle;
using scishuffle::testing::adversarialBytes;
using scishuffle::testing::randomBytes;

net::Frame makeFrame(net::FrameType type, std::size_t payloadLen, u32 seed) {
  net::Frame f;
  f.type = type;
  f.payload = randomBytes(payloadLen, seed);
  return f;
}

TEST(NetFrameTest, RoundTripAllTypesAndSizes) {
  const net::FrameType types[] = {
      net::FrameType::kHello,        net::FrameType::kAssign,
      net::FrameType::kTaskDone,     net::FrameType::kTaskFailed,
      net::FrameType::kHeartbeat,    net::FrameType::kShutdown,
      net::FrameType::kFetchRequest, net::FrameType::kFetchResponse,
      net::FrameType::kFetchError,
  };
  const std::size_t sizes[] = {0, 1, 7, 64, 4096};
  u32 seed = 1;
  for (net::FrameType type : types) {
    for (std::size_t n : sizes) {
      const net::Frame in = makeFrame(type, n, seed++);
      const Bytes wire = encodeFrame(in);
      EXPECT_EQ(wire.size(), n + net::kFrameOverheadBytes);
      net::Frame out;
      const std::size_t consumed = decodeFrame(wire, out);
      EXPECT_EQ(consumed, wire.size());
      EXPECT_EQ(out.type, in.type);
      EXPECT_EQ(out.payload, in.payload);
    }
  }
}

TEST(NetFrameTest, DecodeConsumesOnlyOneFrame) {
  Bytes wire = encodeFrame(makeFrame(net::FrameType::kHeartbeat, 32, 9));
  const std::size_t one = wire.size();
  const Bytes second = encodeFrame(makeFrame(net::FrameType::kAssign, 8, 10));
  wire.insert(wire.end(), second.begin(), second.end());
  net::Frame out;
  EXPECT_EQ(decodeFrame(wire, out), one);
  EXPECT_EQ(out.type, net::FrameType::kHeartbeat);
}

TEST(NetFrameTest, RejectsAdversarialGarbage) {
  std::mt19937_64 rng(0x5eed5eedULL);
  for (int i = 0; i < 500; ++i) {
    const Bytes junk = adversarialBytes(rng, 2048);
    net::Frame out;
    // Any of the adversarial shapes must be rejected with a structured error;
    // "SNF1" plus a matching CRC32 does not arise from noise.
    EXPECT_THROW(decodeFrame(junk, out), FormatError) << "iteration " << i;
  }
}

TEST(NetFrameTest, EveryStrictPrefixReportsTruncation) {
  const Bytes wire = encodeFrame(makeFrame(net::FrameType::kTaskDone, 100, 3));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    net::Frame out;
    const ByteSpan prefix(wire.data(), len);
    // A prefix of a valid frame is by construction valid-so-far, so the
    // decoder must ask for more bytes rather than mislabel it malformed.
    EXPECT_THROW(decodeFrame(prefix, out), net::FrameTruncatedError) << "prefix " << len;
  }
}

TEST(NetFrameTest, EverySingleBitFlipIsDetected) {
  const Bytes wire = encodeFrame(makeFrame(net::FrameType::kFetchResponse, 96, 4));
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = wire;
      flipped[byte] = static_cast<u8>(flipped[byte] ^ (1u << bit));
      net::Frame out;
      // Magic flips fail the magic check, length flips either run past the
      // buffer or land the CRC on payload bytes, everything else fails the
      // CRC (which detects all single-bit errors by construction).
      EXPECT_THROW(decodeFrame(flipped, out), FormatError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(NetFrameTest, ForgedLengthNeverOverReserves) {
  // Length claims kMaxFramePayload but only a handful of bytes follow: must
  // be reported as truncation (valid-so-far), and the implementation bounds
  // its reserve by data.size(), so this cannot allocate 64 MiB.
  Bytes wire = encodeFrame(makeFrame(net::FrameType::kFetchResponse, 4, 5));
  const u32 forged = static_cast<u32>(net::kMaxFramePayload);
  for (int i = 0; i < 4; ++i) wire[5 + i] = static_cast<u8>(forged >> (8 * i));
  net::Frame out;
  EXPECT_THROW(decodeFrame(wire, out), net::FrameTruncatedError);

  // Length above the cap is forged outright — a hard FormatError, never the
  // "wait for more bytes" truncation signal a stream reader would obey.
  const u32 huge = static_cast<u32>(net::kMaxFramePayload) + 1;
  for (int i = 0; i < 4; ++i) wire[5 + i] = static_cast<u8>(huge >> (8 * i));
  bool rejected = false;
  try {
    decodeFrame(wire, out);
  } catch (const net::FrameTruncatedError&) {
    ADD_FAILURE() << "oversized length misclassified as truncation";
  } catch (const FormatError&) {
    rejected = true;
  }
  EXPECT_TRUE(rejected);
}

TEST(NetFrameTest, EncodeRejectsOversizedPayload) {
  net::Frame f;
  f.type = net::FrameType::kFetchResponse;
  // Don't actually allocate 64 MiB+1 of entropy; resize is cheap and enough.
  f.payload.resize(net::kMaxFramePayload + 1);
  EXPECT_THROW(encodeFrame(f), FormatError);
}

TEST(NetProtocolTest, MessageDecodersSurviveAdversarialPayloads) {
  std::mt19937_64 rng(0xfeedULL);
  const net::FrameType types[] = {
      net::FrameType::kHello,        net::FrameType::kAssign,
      net::FrameType::kTaskDone,     net::FrameType::kTaskFailed,
      net::FrameType::kHeartbeat,    net::FrameType::kFetchRequest,
      net::FrameType::kFetchResponse, net::FrameType::kFetchError,
  };
  for (int i = 0; i < 400; ++i) {
    net::Frame f;
    f.type = types[i % (sizeof(types) / sizeof(types[0]))];
    f.payload = adversarialBytes(rng, 1024);
    // Decoders must either produce a message or throw FormatError — anything
    // else (crash, over-reserve, uncaught std::length_error) is a bug. The
    // ASan job runs this too, so quiet memory damage also fails.
    try {
      switch (f.type) {
        case net::FrameType::kHello: (void)net::HelloMsg::decode(f); break;
        case net::FrameType::kAssign: (void)net::AssignMsg::decode(f); break;
        case net::FrameType::kTaskDone: (void)net::TaskDoneMsg::decode(f); break;
        case net::FrameType::kTaskFailed: (void)net::TaskFailedMsg::decode(f); break;
        case net::FrameType::kHeartbeat: (void)net::HeartbeatMsg::decode(f); break;
        case net::FrameType::kFetchRequest: (void)net::FetchRequestMsg::decode(f); break;
        case net::FrameType::kFetchResponse: (void)net::FetchResponseMsg::decode(f); break;
        case net::FrameType::kFetchError: (void)net::FetchErrorMsg::decode(f); break;
        default: break;
      }
    } catch (const FormatError&) {
      // structured rejection: exactly the contract
    }
  }
}

}  // namespace
