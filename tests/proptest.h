// Property-testing harness: seeded generators, a forAll driver, and
// shrinking-lite by halving.
//
// Everything derives from one u64 seed (testing::propertySeed(), overridable
// via SCISHUFFLE_PROP_SEED), and a failure reports the seed, the iteration,
// and the shrunken input — enough to replay the exact failing case:
//
//   SCISHUFFLE_PROP_SEED=12345 ./property_test --gtest_filter=...
//
// Shrinking is deliberately minimal: when an input fails, try its first and
// second halves while they keep failing. That finds "the bug is in byte
// layout, not in size" counterexamples at a fraction of full QuickCheck
// shrinking's cost.
#pragma once

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "testing_support.h"

namespace scishuffle::testing {

// ------------------------------------------------------------- generators

/// Uniform random length in [lo, hi], skewed toward the low end (corpus
/// bugs live in small inputs; byte-level bugs in big ones — 1 in 4 draws
/// takes the full range).
inline std::size_t propLength(std::mt19937_64& rng, std::size_t lo, std::size_t hi) {
  std::uniform_int_distribution<std::size_t> full(lo, hi);
  std::uniform_int_distribution<int> skew(0, 3);
  if (skew(rng) != 0) {
    const std::size_t small = lo + (hi - lo) / 8;
    std::uniform_int_distribution<std::size_t> low(lo, small > lo ? small : lo);
    return low(rng);
  }
  return full(rng);
}

/// Adversarial byte streams: rotates among uniform noise, low-entropy runs,
/// all-equal bytes, the empty stream, and structured grid-walk bytes — the
/// shapes that historically break codecs in different places.
inline Bytes adversarialBytes(std::mt19937_64& rng, std::size_t maxLen = 4096) {
  std::uniform_int_distribution<int> style(0, 4);
  const u32 subSeed = static_cast<u32>(rng());
  const std::size_t n = propLength(rng, 0, maxLen);
  switch (style(rng)) {
    case 0: return randomBytes(n, subSeed);
    case 1: return runnyBytes(n, subSeed);
    case 2: return Bytes(n, static_cast<u8>(subSeed & 0xff));
    case 3: return Bytes{};
    default: {
      // Structured: serialized int32 triples, truncated to n bytes.
      const i32 side = 2 + static_cast<i32>(subSeed % 9);
      Bytes grid = gridWalkTriples(side, side, side);
      grid.resize(std::min(grid.size(), n));
      return grid;
    }
  }
}

// ---------------------------------------------------------------- driver

/// Halves `failing` while the halves keep failing `prop`; returns the
/// smallest still-failing input found.
template <typename T, typename Prop>
std::vector<T> shrinkByHalving(std::vector<T> failing, const Prop& prop) {
  for (;;) {
    const std::size_t n = failing.size();
    if (n < 2) return failing;
    std::vector<T> half(failing.begin(), failing.begin() + static_cast<std::ptrdiff_t>(n / 2));
    if (!prop(half)) {
      failing = std::move(half);
      continue;
    }
    half.assign(failing.begin() + static_cast<std::ptrdiff_t>(n / 2), failing.end());
    if (!prop(half)) {
      failing = std::move(half);
      continue;
    }
    return failing;
  }
}

/// Runs `prop` over `iters` inputs drawn from `gen(rng)`. On the first
/// failure, shrinks by halving and reports seed + iteration + shrunken size
/// through a gtest failure. `prop` must be pure (safe to re-run on shrunken
/// inputs) and return true when the property holds.
template <typename Gen, typename Prop>
void forAll(const std::string& name, u64 seed, int iters, const Gen& gen, const Prop& prop) {
  std::mt19937_64 rng(seed);
  for (int i = 0; i < iters; ++i) {
    auto input = gen(rng);
    bool ok = false;
    std::string what;
    try {
      ok = prop(input);
    } catch (const std::exception& e) {
      what = std::string(" (threw: ") + e.what() + ")";
    }
    if (ok) continue;
    const auto quietProp = [&](const decltype(input)& candidate) {
      try {
        return prop(candidate);
      } catch (...) {
        return false;
      }
    };
    const auto shrunk = shrinkByHalving(input, quietProp);
    ADD_FAILURE() << "property '" << name << "' failed at iteration " << i << " of " << iters
                  << " (seed " << seed << ", SCISHUFFLE_PROP_SEED to replay)" << what
                  << "; input size " << input.size() << ", shrunk to " << shrunk.size()
                  << " bytes";
    return;
  }
}

}  // namespace scishuffle::testing
