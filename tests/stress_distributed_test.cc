// Worker-kill soak: repeated distributed runs with a seeded-random worker
// dying SIGKILL-style (_Exit, no unwind, no goodbye frame) at a random point
// in the task stream — sometimes before its first task, sometimes deep into
// the shuffle. Every round must recover and produce output bit-identical to
// the serial baseline, and every round leaves per-worker metrics JSONL
// artifacts (CI uploads them via SCISHUFFLE_SOAK_METRICS_DIR).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "hadoop/runtime.h"
#include "service/coordinator.h"
#include "service/workload.h"
#include "testing_support.h"

namespace {

using namespace scishuffle;
namespace fs = std::filesystem;
namespace counter = hadoop::counter;
using scishuffle::testing::propertySeed;

struct ScratchDir {
  fs::path path;
  ScratchDir() {
    char tmpl[] = "/tmp/scishuffle-soak-XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(StressDistributedTest, RandomWorkerKillSoakStaysBitIdentical) {
  const u64 seed = propertySeed();
  std::mt19937_64 rng(seed);
  SCOPED_TRACE(::testing::Message() << "seed=" << seed);

  const std::vector<std::string> args = {"10", "500"};
  const service::Workload workload = service::buildWorkload("wordcount", args);
  const hadoop::JobResult serial =
      hadoop::runJob(workload.config, workload.map_tasks, workload.reduce);

  // Per-round metrics artifacts: overridable so CI can upload them.
  fs::path metricsRoot;
  ScratchDir scratch;
  if (const char* env = std::getenv("SCISHUFFLE_SOAK_METRICS_DIR")) {
    metricsRoot = fs::path(env) / "dist";
  } else {
    metricsRoot = scratch.path / "metrics";
  }
  fs::create_directories(metricsRoot);

  constexpr int kRounds = 4;
  constexpr int kWorkers = 3;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(::testing::Message() << "round=" << round);
    ScratchDir dir;
    service::DistributedConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.worker_command = {SCISHUFFLE_WORKER_BIN};
    cfg.work_dir = dir.path;
    cfg.heartbeat_interval_ms = 10;
    cfg.heartbeat_timeout_ms = 2000;
    cfg.transport_retry.enabled = true;
    cfg.transport_retry.max_attempts = 5;
    cfg.transport_retry.base_backoff_us = 500;
    cfg.transport_retry.max_backoff_us = 20'000;
    cfg.metrics_path = metricsRoot / ("coordinator-round-" + std::to_string(round) + ".jsonl");
    cfg.sample_interval_ms = 10;
    cfg.worker_metrics_dir = metricsRoot / ("round-" + std::to_string(round));

    // Seeded-random victim and kill point. With 10 tasks on 3 workers every
    // worker gets at least a few assignments, so the victim always dies.
    const int victim = static_cast<int>(rng() % kWorkers);
    const int killAfter = static_cast<int>(rng() % 3);
    SCOPED_TRACE(::testing::Message() << "victim=" << victim << " killAfter=" << killAfter);
    cfg.extra_worker_args.resize(kWorkers);
    cfg.extra_worker_args[victim] = {"--exit-after-tasks", std::to_string(killAfter)};

    const service::DistributedResult dist = service::runDistributedJob("wordcount", args, cfg);

    EXPECT_EQ(dist.job.outputs, serial.outputs) << "recovered output diverged from serial";
    EXPECT_GE(dist.worker_deaths, 1);
    EXPECT_GE(dist.tasks_reexecuted, 1);
    EXPECT_EQ(dist.job.counters.get(counter::kMapOutputRecords),
              serial.counters.get(counter::kMapOutputRecords));
    for (int w = 0; w < kWorkers; ++w) {
      if (w == victim) continue;  // the victim's stream may be cut anywhere
      EXPECT_TRUE(fs::exists(cfg.worker_metrics_dir / ("worker-" + std::to_string(w) + ".jsonl")))
          << "missing metrics artifact for surviving worker " << w;
    }
  }
}

}  // namespace
