// Runtime semantics of the annotated primitives in io/annotations.h: the
// wrappers must behave exactly like the std types they shim (the annotations
// themselves are compile-time and exercised by the Clang -Wthread-safety CI
// job). Carries the tsan label so the wrappers also run under TSan.
#include "io/annotations.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace scishuffle {
namespace {

TEST(AnnotationsTest, MacrosCompileAwayOrAttach) {
  // Annotated declarations must be valid on every compiler. The class below
  // uses each macro the tree relies on.
  class Annotated {
   public:
    void set(int v) {
      MutexLock lock(mu_);
      setLocked(v);
    }
    int get() const {
      MutexLock lock(mu_);
      return value_;
    }

   private:
    void setLocked(int v) REQUIRES(mu_) { value_ = v; }
    mutable Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
  };
  Annotated a;
  a.set(7);
  EXPECT_EQ(a.get(), 7);
}

TEST(AnnotationsTest, MutexProvidesExclusion) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8 * 10000);
}

TEST(AnnotationsTest, MutexLockSupportsMidScopeUnlockRelock) {
  Mutex mu;
  int value = 0;
  {
    MutexLock lock(mu);
    value = 1;
    lock.unlock();
    {
      // The mutex must be genuinely free while unlocked.
      MutexLock inner(mu);
      value = 2;
    }
    lock.lock();
    EXPECT_EQ(value, 2);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(AnnotationsTest, CondVarWakesExplicitWaitLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    observed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

}  // namespace
}  // namespace scishuffle
