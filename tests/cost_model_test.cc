#include <gtest/gtest.h>

#include "cluster/cost_model.h"

namespace scishuffle::cluster {
namespace {

namespace c = hadoop::counter;

hadoop::Counters sampleCounters() {
  hadoop::Counters counters;
  counters.add(c::kMapCpuUs, 10'000'000);             // 10 s
  counters.add(c::kSortCpuUs, 5'000'000);             // 5 s
  counters.add(c::kCodecCompressCpuUs, 5'000'000);    // 5 s
  counters.add(c::kCodecDecompressCpuUs, 2'000'000);  // 2 s
  counters.add(c::kReduceCpuUs, 3'000'000);           // 3 s
  counters.add(c::kMapOutputMaterializedBytes, 900'000'000);  // 900 MB
  counters.add(c::kReduceShuffleBytes, 900'000'000);
  counters.add(c::kReduceMergeMaterializedBytes, 450'000'000);
  return counters;
}

TEST(CostModelTest, PhaseArithmetic) {
  ClusterSpec spec;
  spec.nodes = 5;
  spec.map_slots = 10;
  spec.reduce_slots = 5;
  spec.disk_mb_per_s = 90;
  spec.net_mb_per_s = 110;
  const CostModel model(spec);

  const auto breakdown = model.estimate(sampleCounters(), /*outputBytes=*/450'000'000);
  // Map: (10+5+5)s / 10 slots = 2s CPU; 900 MB / 450 MB/s = 2s disk.
  EXPECT_DOUBLE_EQ(breakdown.map_cpu_s, 2.0);
  EXPECT_DOUBLE_EQ(breakdown.map_io_s, 2.0);
  // Shuffle: 900 / 550 net, 900 / 450 disk.
  EXPECT_NEAR(breakdown.shuffle_net_s, 900.0 / 550.0, 1e-9);
  EXPECT_NEAR(breakdown.shuffle_disk_s, 2.0, 1e-9);
  // Reduce: (2+3)/5 = 1s CPU; (900 + 2*450 + 450)/450 = 5s disk.
  EXPECT_DOUBLE_EQ(breakdown.reduce_cpu_s, 1.0);
  EXPECT_NEAR(breakdown.reduce_io_s, 5.0, 1e-9);
  EXPECT_NEAR(breakdown.total(),
              breakdown.mapPhase() + breakdown.shufflePhase() + breakdown.reducePhase(), 1e-12);
}

TEST(CostModelTest, ScaleIsLinear) {
  const CostModel model(ClusterSpec{});
  const auto counters = sampleCounters();
  const auto x1 = model.estimate(counters, 1'000'000, 1.0);
  const auto x10 = model.estimate(counters, 1'000'000, 10.0);
  EXPECT_NEAR(x10.total(), 10.0 * x1.total(), 1e-9);
  EXPECT_NEAR(x10.map_cpu_s, 10.0 * x1.map_cpu_s, 1e-9);
}

TEST(CostModelTest, CpuScaleOnlyAffectsCpuTerms) {
  ClusterSpec slowCpu;
  slowCpu.cpu_scale = 3.0;
  const auto counters = sampleCounters();
  const auto fast = CostModel(ClusterSpec{}).estimate(counters, 0);
  const auto slow = CostModel(slowCpu).estimate(counters, 0);
  EXPECT_NEAR(slow.map_cpu_s, 3.0 * fast.map_cpu_s, 1e-9);
  EXPECT_NEAR(slow.reduce_cpu_s, 3.0 * fast.reduce_cpu_s, 1e-9);
  EXPECT_DOUBLE_EQ(slow.map_io_s, fast.map_io_s);
  EXPECT_DOUBLE_EQ(slow.shuffle_net_s, fast.shuffle_net_s);
}

TEST(CostModelTest, MoreNodesShrinkIoNotSlotBoundCpu) {
  ClusterSpec five;
  ClusterSpec ten = five;
  ten.nodes = 10;
  const auto counters = sampleCounters();
  const auto b5 = CostModel(five).estimate(counters, 0);
  const auto b10 = CostModel(ten).estimate(counters, 0);
  EXPECT_NEAR(b10.map_io_s, b5.map_io_s / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(b10.map_cpu_s, b5.map_cpu_s);  // slots unchanged
}

TEST(CostModelTest, ToStringMentionsEveryPhase) {
  const auto s = CostModel(ClusterSpec{}).estimate(sampleCounters(), 0).toString();
  EXPECT_NE(s.find("map"), std::string::npos);
  EXPECT_NE(s.find("shuffle"), std::string::npos);
  EXPECT_NE(s.find("reduce"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
}

}  // namespace
}  // namespace scishuffle::cluster
