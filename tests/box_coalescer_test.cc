#include <gtest/gtest.h>

#include <random>
#include <set>

#include "scikey/box_coalescer.h"

namespace scishuffle::scikey {
namespace {

std::vector<grid::Coord> cellsOf(const grid::Box& box) {
  std::vector<grid::Coord> cells;
  box.forEachCell([&](const grid::Coord& c) { cells.push_back(c); });
  return cells;
}

void expectExactCover(const std::vector<grid::Coord>& cells, const std::vector<grid::Box>& boxes) {
  std::set<grid::Coord> expected(cells.begin(), cells.end());
  std::set<grid::Coord> covered;
  for (const auto& box : boxes) {
    box.forEachCell([&](const grid::Coord& c) {
      EXPECT_TRUE(covered.insert(c).second) << "boxes overlap at " << grid::coordToString(c);
    });
  }
  EXPECT_EQ(covered, expected);
}

TEST(BoxCoalescerTest, EmptyAndSingle) {
  EXPECT_TRUE(coalesceCells({}).empty());
  const auto boxes = coalesceCells({{3, 4}});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], grid::Box::cell({3, 4}));
}

TEST(BoxCoalescerTest, RectangleBecomesOneBox) {
  const grid::Box rect({-2, 5}, {7, 9});
  const auto boxes = coalesceCells(cellsOf(rect));
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], rect);
}

TEST(BoxCoalescerTest, ThreeDimensionalRectangle) {
  const grid::Box rect({0, 0, 0}, {4, 5, 6});
  const auto boxes = coalesceCells(cellsOf(rect));
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], rect);
}

TEST(BoxCoalescerTest, LShapeNeedsTwoBoxes) {
  // An L: a 4x4 square missing its 2x2 upper-right corner.
  std::vector<grid::Coord> cells;
  grid::Box({0, 0}, {4, 4}).forEachCell([&](const grid::Coord& c) {
    if (!(c[0] < 2 && c[1] >= 2)) cells.push_back(c);
  });
  const auto boxes = coalesceCells(cells);
  expectExactCover(cells, boxes);
  EXPECT_EQ(boxes.size(), 2u);
}

TEST(BoxCoalescerTest, Fig5Ambiguity) {
  // The paper's Fig. 5: a plus-shaped region where the middle cell may join
  // either arm. Greedy must still produce an exact cover (optimality is the
  // suspected-NP-hard part we don't claim).
  const std::vector<grid::Coord> cells = {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}};
  const auto boxes = coalesceCells(cells);
  expectExactCover(cells, boxes);
  EXPECT_LE(boxes.size(), 4u);
}

TEST(BoxCoalescerTest, DuplicateCellsAreRejected) {
  EXPECT_THROW(coalesceCells({{1, 1}, {1, 1}}), std::logic_error);
}

class BoxCoalescerProperty : public ::testing::TestWithParam<u32> {};

TEST_P(BoxCoalescerProperty, RandomSubsetsAreExactlyCovered) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> coin(0, 2);
  std::vector<grid::Coord> cells;
  grid::Box({0, 0}, {12, 12}).forEachCell([&](const grid::Coord& c) {
    if (coin(rng) != 0) cells.push_back(c);
  });
  const auto boxes = coalesceCells(cells);
  expectExactCover(cells, boxes);
  EXPECT_LE(boxes.size(), cells.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxCoalescerProperty, ::testing::Range(0u, 12u));

TEST(BoxCoalescerTest, KeySizeFormula) {
  EXPECT_EQ(boxKeySize(2), 4u + 32u);
  EXPECT_EQ(boxKeySize(4), 4u + 64u);
}

}  // namespace
}  // namespace scishuffle::scikey
