// Block-framed codec container: round-trips across every registered codec
// and block size, corruption detection, parallel/serial byte identity, the
// streaming merge's memory bound, and a thread-pool stress run of the
// pipelined shuffle against the serial baseline.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "compress/block_format.h"
#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "transform/transform_codec.h"

namespace scishuffle {
namespace {

Bytes patternedData(std::size_t n, u32 seed) {
  // Compressible but not trivial: ramps with seeded noise.
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> noise(0, 7);
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<u8>((i / 7 + noise(rng)) & 0xFF);
  }
  return data;
}

std::vector<std::string> allCodecNames() {
  registerTransformCodecs();
  return CodecRegistry::instance().names();
}

class RoundTrip : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(RoundTrip, WriterReaderRoundTripsInOddChunks) {
  const auto& [codecName, blockBytes] = GetParam();
  const auto codec = CodecRegistry::instance().create(codecName);
  const Bytes data = patternedData(40'000, 42);

  BlockCompressedWriter writer(codec.get(), blockBytes);
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(chunk, data.size() - pos);
    writer.write(ByteSpan(data).subspan(pos, take));
    pos += take;
    chunk = chunk * 2 + 1;  // uneven chunks straddle block boundaries
  }
  const Bytes stream = writer.close();

  BlockCompressedReader reader(stream, codec.get());
  Bytes decoded;
  while (auto block = reader.nextBlock()) {
    EXPECT_LE(block->size(), blockBytes);
    decoded.insert(decoded.end(), block->begin(), block->end());
  }
  EXPECT_EQ(decoded, data);
  EXPECT_EQ(reader.blocksRead(), (data.size() + blockBytes - 1) / blockBytes);

  // The streaming source sees the same bytes and stays block-bounded.
  BlockDecodeSource source(stream, codec.get());
  EXPECT_EQ(source.readAll(), data);
  EXPECT_LE(source.residentPeakBytes(), blockBytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAndBlockSizes, RoundTrip,
    ::testing::Combine(::testing::ValuesIn(allCodecNames()),
                       ::testing::Values(std::size_t{1}, std::size_t{4} << 10,
                                         std::size_t{256} << 10, std::size_t{1} << 20)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>& info) {
      std::string codec = std::get<0>(info.param);
      for (auto& c : codec) {
        if (c == '+') c = '_';
      }
      return codec + "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(BlockFormatTest, EmptyStreamRoundTrips) {
  BlockCompressedWriter writer(nullptr);
  const Bytes stream = writer.close();
  BlockCompressedReader reader(stream, nullptr);
  EXPECT_EQ(reader.nextBlock(), std::nullopt);
  EXPECT_TRUE(reader.done());
}

TEST(BlockFormatTest, NullCodecPointerStoresBlocksVerbatim) {
  const Bytes data = patternedData(10'000, 7);
  const Bytes stream = blockCompress(data, nullptr, 4096);
  EXPECT_EQ(blockDecompressAll(stream, nullptr), data);
}

TEST(BlockFormatTest, ParallelCompressionIsByteIdenticalToSerial) {
  const auto codec = CodecRegistry::instance().create("gzipish");
  const Bytes data = patternedData(300'000, 5);
  const Bytes serial = blockCompress(data, codec.get(), 16 << 10);
  ThreadPool pool(4);
  u64 cpuUs = 0;
  const Bytes parallel = blockCompress(data, codec.get(), 16 << 10, &pool, &cpuUs);
  EXPECT_EQ(parallel, serial);
  EXPECT_GT(cpuUs, 0u);
  EXPECT_EQ(blockDecompressAll(parallel, codec.get()), data);
}

TEST(BlockFormatTest, DecodeAheadSourceMatchesAndStaysBounded) {
  const auto codec = CodecRegistry::instance().create("gzipish");
  const Bytes data = patternedData(200'000, 9);
  constexpr std::size_t kBlock = 8 << 10;
  const Bytes stream = blockCompress(data, codec.get(), kBlock);
  ThreadPool pool(3);
  BlockDecodeSource source(stream, codec.get(), &pool);
  EXPECT_EQ(source.readAll(), data);
  // Current block plus one decode-ahead block.
  EXPECT_LE(source.residentPeakBytes(), 2 * kBlock);
}

TEST(BlockFormatTest, BadMagicAndVersionThrow) {
  Bytes stream = blockCompress(patternedData(100, 1), nullptr, 64);
  Bytes badMagic = stream;
  badMagic[0] ^= 0xFF;
  EXPECT_THROW(BlockCompressedReader(badMagic, nullptr), FormatError);
  Bytes badVersion = stream;
  badVersion[4] = 99;
  EXPECT_THROW(BlockCompressedReader(badVersion, nullptr), FormatError);
  EXPECT_THROW(BlockCompressedReader(ByteSpan(stream).subspan(0, 3), nullptr), FormatError);
}

TEST(BlockFormatTest, TruncatedStreamThrows) {
  const Bytes stream = blockCompress(patternedData(10'000, 3), nullptr, 1024);
  // Chop off the end marker and the last block's tail.
  for (const std::size_t keep : {stream.size() - 1, stream.size() - 700, std::size_t{6}}) {
    BlockCompressedReader reader(ByteSpan(stream).subspan(0, keep), nullptr);
    EXPECT_THROW(
        {
          while (reader.nextBlock()) {
          }
        },
        FormatError);
  }
}

TEST(BlockFormatTest, FlippedCrcNamesTheBlock) {
  const auto codec = CodecRegistry::instance().create("gzipish");
  Bytes stream = blockCompress(patternedData(5'000, 11), codec.get(), 1024);
  // Flip one bit somewhere in the middle of the stream body: depending on
  // where it lands this corrupts a CRC, a payload, or a header — all must
  // surface as FormatError, never as silent corruption.
  stream[stream.size() / 2] ^= 0x10;
  try {
    BlockCompressedReader reader(stream, codec.get());
    Bytes all;
    while (auto block = reader.nextBlock()) {
      all.insert(all.end(), block->begin(), block->end());
    }
    FAIL() << "corruption was not detected";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("block frame"), std::string::npos) << e.what();
  }
}

// ---- Pipelined shuffle end-to-end -----------------------------------------

using hadoop::EmitFn;
using hadoop::JobConfig;
using hadoop::JobResult;
using hadoop::MapTask;
using hadoop::ReduceFn;

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

JobResult runWordCountJob(JobConfig config, int docs, int words, u32 seed) {
  const std::vector<std::string> vocab = {"the", "windspeed", "grid", "key",
                                          "map", "reduce",    "sci",  "curve"};
  std::vector<MapTask> tasks;
  for (int d = 0; d < docs; ++d) {
    tasks.push_back(MapTask{[&vocab, words, seed, d](const EmitFn& emit) {
      std::mt19937 rng(seed + static_cast<u32>(d));
      std::uniform_int_distribution<std::size_t> pick(0, vocab.size() - 1);
      for (int w = 0; w < words; ++w) emit(toBytes(vocab[pick(rng)]), encodeI64(1));
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) {
      MemorySource src(v);
      sum += readI64(src);
    }
    emit(key, encodeI64(sum));
  };
  return runJob(config, tasks, reduce);
}

std::map<std::string, u64> recordCounters(const JobResult& result) {
  std::map<std::string, u64> records;
  for (const auto& [name, value] : result.counters.snapshot()) {
    if (name.find("CPU_US") == std::string::npos && name.find("BYTES") == std::string::npos) {
      records[name] = value;
    }
  }
  return records;
}

TEST(PipelinedShuffleTest, EightConcurrentJobsMatchTheSerialPath) {
  JobConfig serialConfig;
  serialConfig.shuffle_pipeline = false;
  serialConfig.num_reducers = 3;
  serialConfig.map_slots = 4;
  serialConfig.intermediate_codec = "gzipish";
  serialConfig.spill_buffer_bytes = 2048;  // several spills per task
  const JobResult baseline = runWordCountJob(serialConfig, 6, 400, 321);

  JobConfig pipeConfig = serialConfig;
  pipeConfig.shuffle_pipeline = true;
  pipeConfig.shuffle_block_bytes = 1 << 10;
  pipeConfig.codec_threads = 2;

  std::vector<JobResult> results(8);
  std::vector<std::thread> jobs;
  for (std::size_t j = 0; j < results.size(); ++j) {
    jobs.emplace_back(
        [&, j] { results[j] = runWordCountJob(pipeConfig, 6, 400, 321); });
  }
  for (auto& t : jobs) t.join();

  for (const JobResult& result : results) {
    EXPECT_EQ(result.outputs, baseline.outputs);  // bit-identical reduce outputs
    EXPECT_EQ(recordCounters(result), recordCounters(baseline));
  }
}

TEST(PipelinedShuffleTest, StreamingMergeMemoryIsBoundedBySegmentsTimesBlock) {
  // 64 map tasks -> 64 segments into one reducer; ~32 KiB of records per
  // segment but only 1 KiB blocks resident during the merge.
  constexpr int kMaps = 64;
  constexpr std::size_t kBlock = 1 << 10;
  JobConfig config;
  config.num_reducers = 1;
  config.map_slots = 4;
  config.merge_factor = kMaps;  // single merge pass: the direct bound
  config.shuffle_block_bytes = kBlock;
  config.codec_threads = 2;
  std::vector<MapTask> tasks;
  for (int m = 0; m < kMaps; ++m) {
    tasks.push_back(MapTask{[m](const EmitFn& emit) {
      for (int i = 0; i < 512; ++i) {
        emit(toBytes("k" + std::to_string(m * 512 + i)), patternedData(48, static_cast<u32>(i)));
      }
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    emit(key, values.front());
  };
  const JobResult result = runJob(config, tasks, reduce);

  const u64 shuffled = result.counters.get(hadoop::counter::kReduceShuffleBytes);
  const u64 peak = result.reduce_tasks[0].merge_resident_peak_bytes;
  EXPECT_GT(peak, 0u);
  // O(segments x block): current block + one decode-ahead block per segment.
  EXPECT_LE(peak, static_cast<u64>(kMaps) * 2 * kBlock);
  // ...and genuinely smaller than whole-segment materialization.
  EXPECT_LT(peak, shuffled / 2);
}

TEST(PipelinedShuffleTest, ReportsShuffleOverlapUnderTheMapPhase) {
  JobConfig config;
  config.num_reducers = 2;
  config.map_slots = 1;  // serialize maps so early publishes precede map end
  const JobResult result = runWordCountJob(config, 4, 200, 9);
  EXPECT_GT(result.timings.shuffle_overlap_us, 0u);
}

TEST(PipelinedShuffleTest, MapFailureStillPropagatesThroughTheShuffle) {
  JobConfig config;
  config.num_reducers = 2;
  std::vector<MapTask> tasks{
      MapTask{[](const EmitFn& emit) { emit(toBytes("ok"), encodeI64(1)); }},
      MapTask{[](const EmitFn&) { throw std::runtime_error("boom"); }}};
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    emit(key, values.front());
  };
  EXPECT_THROW(runJob(config, tasks, reduce), std::runtime_error);
}

}  // namespace
}  // namespace scishuffle
