#include <gtest/gtest.h>

#include "compress/mtf.h"
#include "testing_support.h"

namespace scishuffle::mtf {
namespace {

TEST(MtfTest, RepeatedSymbolBecomesZeros) {
  const Bytes data(100, 55);
  const Bytes enc = encode(data);
  EXPECT_EQ(enc[0], 55);  // first occurrence: its position in the identity list
  for (std::size_t i = 1; i < enc.size(); ++i) EXPECT_EQ(enc[i], 0u);
  EXPECT_EQ(decode(enc), data);
}

class MtfProperty : public ::testing::TestWithParam<u32> {};

TEST_P(MtfProperty, RoundTrips) {
  const Bytes random = scishuffle::testing::randomBytes(5000, GetParam());
  EXPECT_EQ(decode(encode(random)), random);
  const Bytes runny = scishuffle::testing::runnyBytes(5000, GetParam());
  EXPECT_EQ(decode(encode(runny)), runny);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtfProperty, ::testing::Range(0u, 10u));

TEST(ZeroRunTest, EncodesRunsInBijectiveBase2) {
  // 3 zeros: 3 = 1*1 + 1*2 -> RUNA RUNA. 4 zeros: 4 = 2*1 + 1*2 -> RUNB RUNA.
  Bytes threeZeros(3, 0);
  auto symbols = zeroRunEncode(threeZeros);
  EXPECT_EQ(symbols, (std::vector<u32>{kRunA, kRunA, kEob}));
  Bytes fourZeros(4, 0);
  symbols = zeroRunEncode(fourZeros);
  EXPECT_EQ(symbols, (std::vector<u32>{kRunB, kRunA, kEob}));
}

TEST(ZeroRunTest, RunLengthGrowsLogarithmically) {
  // A million zeros must need only ~20 symbols — this is what keeps
  // transform+bzip2ish output at the "five orders of magnitude" scale.
  const Bytes zeros(1000000, 0);
  const auto symbols = zeroRunEncode(zeros);
  EXPECT_LE(symbols.size(), 22u);
  EXPECT_EQ(zeroRunDecode(symbols), zeros);
}

class ZeroRunProperty : public ::testing::TestWithParam<u32> {};

TEST_P(ZeroRunProperty, RoundTrips) {
  // MTF output distribution: lots of zeros, some small values.
  Bytes data = scishuffle::testing::randomBytes(3000, GetParam());
  for (auto& b : data) {
    if (b < 200) b = 0;
  }
  EXPECT_EQ(zeroRunDecode(zeroRunEncode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroRunProperty, ::testing::Range(0u, 10u));

TEST(Rle1Test, ShortRunsPassThrough) {
  const Bytes data = {1, 2, 2, 3, 3, 3, 4};
  EXPECT_EQ(rle1Encode(data), data);
  EXPECT_EQ(rle1Decode(rle1Encode(data)), data);
}

TEST(Rle1Test, LongRunsCollapse) {
  const Bytes run(200, 9);
  const Bytes enc = rle1Encode(run);
  EXPECT_EQ(enc.size(), 5u);  // 4 literals + count byte
  EXPECT_EQ(enc[4], 196u);
  EXPECT_EQ(rle1Decode(enc), run);
}

TEST(Rle1Test, RunOfExactlyFourHasZeroCount) {
  const Bytes run(4, 7);
  const Bytes enc = rle1Encode(run);
  EXPECT_EQ(enc, (Bytes{7, 7, 7, 7, 0}));
  EXPECT_EQ(rle1Decode(enc), run);
}

TEST(Rle1Test, VeryLongRunsSplit) {
  const Bytes run(1000, 3);
  EXPECT_EQ(rle1Decode(rle1Encode(run)), run);
  EXPECT_LT(rle1Encode(run).size(), 25u);
}

class Rle1Property : public ::testing::TestWithParam<u32> {};

TEST_P(Rle1Property, RoundTrips) {
  EXPECT_EQ(rle1Decode(rle1Encode(scishuffle::testing::randomBytes(4000, GetParam()))),
            scishuffle::testing::randomBytes(4000, GetParam()));
  EXPECT_EQ(rle1Decode(rle1Encode(scishuffle::testing::runnyBytes(4000, GetParam()))),
            scishuffle::testing::runnyBytes(4000, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rle1Property, ::testing::Range(0u, 8u));

TEST(Rle1Test, TruncatedCountThrows) {
  EXPECT_THROW(rle1Decode(Bytes{5, 5, 5, 5}), FormatError);
}

TEST(ZeroRunTest, MissingEobThrows) {
  EXPECT_THROW(zeroRunDecode({kRunA, kRunB}), FormatError);
}

TEST(ZeroRunTest, BadSymbolThrows) {
  EXPECT_THROW(zeroRunDecode({300u, kEob}), FormatError);
}

}  // namespace
}  // namespace scishuffle::mtf
