#include <gtest/gtest.h>

#include <filesystem>

#include "grid/ncfile.h"
#include "io/streams.h"
#include "testing_support.h"

namespace scishuffle::grid {
namespace {

Dataset sampleDataset() {
  Dataset ds;
  auto& wind = ds.addVariable("windspeed1", DataType::kFloat32, Shape({6, 8}));
  gen::fillWindspeed(wind, 4);
  auto& pressure = ds.addVariable("pressure", DataType::kInt32, Shape({3, 4, 5}));
  gen::fillLinear(pressure);
  auto& humidity = ds.addVariable("humidity", DataType::kFloat64, Shape({10}));
  for (i64 i = 0; i < 10; ++i) humidity.setFloat64({i}, 0.1 * static_cast<double>(i));
  return ds;
}

TEST(NcFileTest, RoundTripsAllTypes) {
  const Dataset original = sampleDataset();
  Bytes file;
  MemorySink sink(file);
  writeDataset(sink, original);

  MemorySource source(file);
  const Dataset loaded = readDataset(source);
  EXPECT_EQ(loaded.variableNames(), original.variableNames());
  for (const auto& name : original.variableNames()) {
    const Variable& a = original.variable(name);
    const Variable& b = loaded.variable(name);
    EXPECT_EQ(a.type(), b.type());
    EXPECT_EQ(a.shape(), b.shape());
    EXPECT_EQ(a.raw(), b.raw());
  }
}

TEST(NcFileTest, FileRoundTrip) {
  const testing::TempDir dir;
  const auto path = dir.file("scishuffle_ncfile_test.bin");
  saveDataset(path, sampleDataset());
  const Dataset loaded = loadDataset(path);
  EXPECT_EQ(loaded.variable("pressure").int32At({2, 3, 4}), Shape({3, 4, 5}).linearize({2, 3, 4}));
}

TEST(NcFileTest, EmptyDataset) {
  Bytes file;
  MemorySink sink(file);
  writeDataset(sink, Dataset{});
  MemorySource source(file);
  EXPECT_TRUE(readDataset(source).variableNames().empty());
}

TEST(NcFileTest, CorruptionIsDetected) {
  Bytes file;
  MemorySink sink(file);
  writeDataset(sink, sampleDataset());

  {
    Bytes bad = file;
    bad[0] = 'X';  // magic
    MemorySource source(bad);
    EXPECT_THROW(readDataset(source), FormatError);
  }
  {
    Bytes bad = file;
    bad[bad.size() / 2] ^= 0x1;  // payload -> CRC mismatch somewhere
    MemorySource source(bad);
    EXPECT_THROW(readDataset(source), FormatError);
  }
  {
    Bytes truncated(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(file.size() / 3));
    MemorySource source(truncated);
    EXPECT_THROW(readDataset(source), FormatError);
  }
}

}  // namespace
}  // namespace scishuffle::grid
