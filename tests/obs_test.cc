// Tests for the observability layer: span recording (single- and
// multi-threaded — this test carries the `tsan` label), Chrome trace export,
// histogram percentile math, the metrics registry, and the span->histogram
// folding that powers JobConfig::collect_histograms.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing_support.h"

namespace scishuffle::obs {
namespace {

using testing::JsonParser;
using testing::JsonValue;

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, RoundTripsThroughParser) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.kv("text", std::string("he said \"hi\"\n\ttab"));
  w.kv("big", u64{18446744073709551615ull});
  w.kv("neg", i64{-42});
  w.kv("pi", 3.25);
  w.kv("yes", true);
  w.key("null").valueNull();
  w.key("list").beginArray();
  w.value(u64{1});
  w.value(u64{2});
  w.endArray();
  w.endObject();
  ASSERT_TRUE(w.done());

  const JsonValue v = JsonParser::parse(os.str());
  EXPECT_EQ(v.at("text").string, "he said \"hi\"\n\ttab");
  // 2^64-1 is not exactly representable in a double; just check magnitude.
  EXPECT_GT(v.at("big").number, 1.8e19);
  EXPECT_EQ(v.at("neg").number, -42.0);
  EXPECT_EQ(v.at("pi").number, 3.25);
  EXPECT_TRUE(v.at("yes").boolean);
  EXPECT_EQ(v.at("null").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v.at("list").array.size(), 2u);
  EXPECT_EQ(v.at("list").array[1].number, 2.0);
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.kv("ctl", std::string("a\x01" "b"));
  w.endObject();
  EXPECT_NE(os.str().find("\\u0001"), std::string::npos);
  EXPECT_NO_THROW(JsonParser::parse(os.str()));
}

TEST(JsonWriterTest, DoublesRoundTripExactly) {
  // Shortest-round-trip formatting: parsing the emitted text must recover
  // the exact bit pattern for doubles across the magnitude range the
  // metrics stream emits (means, fractional seconds, byte counts as f64).
  const double cases[] = {0.0,  0.1,   -2.5,     1.0 / 3.0,          6.25e-3,
                          1e-9, 1e300, 12345.75, 1.25e-7,            123456789.0,
                          -0.5, 2.0,   1e21,     0.028999999999999998};
  for (const double d : cases) {
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.value(d);
    w.endArray();
    const JsonValue v = JsonParser::parse(os.str());
    ASSERT_EQ(v.array.size(), 1u) << os.str();
    EXPECT_EQ(v.array[0].number, d) << "emitted: " << os.str();
  }
}

TEST(JsonWriterTest, DoublesAreLocaleIndependentAndFiniteOnly) {
  // The decimal separator must be '.' regardless of the C locale (a comma
  // would corrupt every metrics/report consumer), and non-finite values —
  // unrepresentable in JSON — degrade to null.
  std::ostringstream os;
  JsonWriter w(os);
  w.beginArray();
  w.value(3.5);
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.endArray();
  const std::string text = os.str();
  EXPECT_NE(text.find("3.5"), std::string::npos);
  EXPECT_EQ(text.find("3,5"), std::string::npos);  // never a comma separator
  const JsonValue v = JsonParser::parse(text);
  ASSERT_EQ(v.array.size(), 4u);
  EXPECT_EQ(v.array[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.array[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.array[3].kind, JsonValue::Kind::kNull);
}

TEST(JsonWriterTest, BoolsRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject();
  w.kv("yes", true);
  w.kv("no", false);
  w.endObject();
  EXPECT_NE(os.str().find("true"), std::string::npos);
  EXPECT_NE(os.str().find("false"), std::string::npos);
  const JsonValue v = JsonParser::parse(os.str());
  EXPECT_TRUE(v.at("yes").boolean);
  EXPECT_FALSE(v.at("no").boolean);
}

// ---------------------------------------------------------------- tracing

TEST(TraceTest, ScopedSpanRecordsNameCategoryAndArgs) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "block_compress", "codec");
    span.arg("raw_bytes", 4096);
  }
  const auto spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "block_compress");
  EXPECT_EQ(spans[0].category, "codec");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "raw_bytes");
  EXPECT_EQ(spans[0].args[0].second, 4096u);
  EXPECT_GT(spans[0].tid, 0u);
}

TEST(TraceTest, NoActiveRecorderMeansNoRecording) {
  ASSERT_EQ(activeTrace(), nullptr);
  {
    ScopedSpan span("orphan", "test");
    EXPECT_FALSE(span.enabled());
    span.arg("ignored", 1);  // must be safe to call
  }
  // Nothing to assert beyond "did not crash": there is no recorder to check.
}

TEST(TraceTest, ActiveRecorderIsPickedUpByDefaultConstructor) {
  TraceRecorder recorder;
  setActiveTrace(&recorder);
  {
    ScopedSpan span("picked_up", "test");
    EXPECT_TRUE(span.enabled());
  }
  setActiveTrace(nullptr);
  {
    ScopedSpan span("after_clear", "test");
    EXPECT_FALSE(span.enabled());
  }
  ASSERT_EQ(recorder.spanCount(), 1u);
  EXPECT_EQ(recorder.snapshot()[0].name, "picked_up");
}

// The tsan-labeled core: many threads recording concurrently through the
// process-wide active recorder must neither race nor drop spans.
TEST(TraceTest, ConcurrentSpansFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  TraceRecorder recorder;
  setActiveTrace(&recorder);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("worker_span", "test");
        span.arg("thread", static_cast<u64>(t));
        span.arg("iteration", static_cast<u64>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  setActiveTrace(nullptr);

  const auto spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread);
  std::set<u32> tids;
  for (const Span& s : spans) {
    EXPECT_EQ(s.name, "worker_span");
    tids.insert(s.tid);
  }
  // Every recording thread gets its own stable small id.
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  for (const u32 tid : tids) EXPECT_LE(tid, static_cast<u32>(kThreads));
}

TEST(TraceTest, ChromeTraceExportIsValidAndComplete) {
  TraceRecorder recorder;
  {
    ScopedSpan a(&recorder, "first", "alpha");
    a.arg("bytes", 10);
  }
  { ScopedSpan b(&recorder, "second", "beta"); }

  std::ostringstream os;
  recorder.writeChromeTrace(os);
  const JsonValue doc = JsonParser::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GT(e.at("tid").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_TRUE(e.has("ts"));
  }
  // Sorted by start time, and args survive export.
  EXPECT_EQ(events[0].at("name").string, "first");
  EXPECT_EQ(events[0].at("cat").string, "alpha");
  EXPECT_EQ(events[0].at("args").at("bytes").number, 10.0);
  EXPECT_EQ(events[1].at("name").string, "second");
}

// ---------------------------------------------------------------- histograms

TEST(HistogramTest, PercentilesOnUniformData) {
  // Values 1..100 into decade buckets: p50 lands in the (40,50] bucket and
  // interpolates to ~50; p99 into (90,100] at ~99.
  Histogram h("latency", "us", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_NEAR(static_cast<double>(s.p50()), 50.0, 5.0);
  EXPECT_NEAR(static_cast<double>(s.p95()), 95.0, 5.0);
  EXPECT_NEAR(static_cast<double>(s.p99()), 99.0, 5.0);
  EXPECT_EQ(s.mean(), 50u);
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  Histogram h("sizes", "bytes", {10, 20});
  h.record(5);
  h.record(1000);  // overflow: beyond the last bound
  h.record(9000);
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);  // two bounded buckets + overflow
  EXPECT_EQ(s.counts[2], 2u);
  // Ranks landing in the +inf bucket have no upper bound to interpolate
  // against; the observed max is the honest answer.
  EXPECT_EQ(s.p99(), 9000u);
  EXPECT_EQ(s.max, 9000u);
}

TEST(HistogramTest, EmptyHistogramIsAllZeroes) {
  Histogram h("empty", "us", Histogram::defaultLatencyBounds());
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile(0.5), 0u);
  EXPECT_EQ(s.mean(), 0u);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  Histogram h("narrow", "us", {1024, 2048, 4096});
  h.record(1500);
  h.record(1600);
  const HistogramSnapshot s = h.snapshot();
  // Interpolation inside (1024, 2048] would reach below the observed min or
  // above the observed max; clamping keeps estimates inside [1500, 1600].
  EXPECT_GE(s.percentile(0.01), 1500u);
  EXPECT_LE(s.p99(), 1600u);
}

TEST(HistogramTest, ExponentialBoundsDouble) {
  const auto bounds = Histogram::exponentialBounds(64, 5);
  EXPECT_EQ(bounds, (std::vector<u64>{64, 128, 256, 512, 1024}));
}

TEST(HistogramTest, ConcurrentRecordingKeepsEveryValue) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  Histogram h("contended", "us", Histogram::defaultLatencyBounds());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) h.record(static_cast<u64>(i));
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(s.sum, static_cast<u64>(kThreads) * (kPerThread * (kPerThread + 1) / 2));
}

TEST(HistogramTest, SnapshotJsonParses) {
  Histogram h("spill_us", "us", {10, 100});
  h.record(7);
  h.record(70);
  std::ostringstream os;
  JsonWriter w(os);
  h.snapshot().writeJson(w);
  const JsonValue v = JsonParser::parse(os.str());
  EXPECT_EQ(v.at("name").string, "spill_us");
  EXPECT_EQ(v.at("unit").string, "us");
  EXPECT_EQ(v.at("count").number, 2.0);
  ASSERT_EQ(v.at("bounds").array.size(), 2u);
  ASSERT_EQ(v.at("counts").array.size(), 3u);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.add("events", 3);
  registry.add("events", 2);
  EXPECT_EQ(registry.counter("events"), 5u);
  EXPECT_EQ(registry.counter("missing"), 0u);

  registry.setGauge("buffer_fill", 17);
  registry.setGauge("buffer_fill", 9);  // gauges overwrite

  Histogram& h = registry.histogram("lat", "us", Histogram::defaultLatencyBounds());
  h.record(5);
  // Same name returns the same instance, not a fresh histogram.
  EXPECT_EQ(&registry.histogram("lat", "us", Histogram::defaultLatencyBounds()), &h);

  const JobTelemetry t = registry.snapshot();
  EXPECT_EQ(t.counters.at("events"), 5u);
  EXPECT_EQ(t.gauges.at("buffer_fill"), 9u);
  ASSERT_NE(t.findHistogram("lat"), nullptr);
  EXPECT_EQ(t.findHistogram("lat")->count, 1u);
  EXPECT_EQ(t.findHistogram("nope"), nullptr);
}

// ---------------------------------------------------------------- folding

TEST(TelemetryFromSpansTest, FoldsDurationsAndByteArgs) {
  TraceRecorder recorder;
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(&recorder, "spill", "spill");
    span.arg("buffered_bytes", static_cast<u64>(1024 * (i + 1)));
    span.arg("records", 100);  // not byte-valued: must NOT become a histogram
  }
  const JobTelemetry t = telemetryFromSpans(recorder.snapshot());

  const HistogramSnapshot* durations = t.findHistogram("spill_us");
  ASSERT_NE(durations, nullptr);
  EXPECT_EQ(durations->unit, "us");
  EXPECT_EQ(durations->count, 3u);

  const HistogramSnapshot* sizes = t.findHistogram("spill.buffered_bytes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->unit, "bytes");
  EXPECT_EQ(sizes->count, 3u);
  EXPECT_EQ(sizes->max, 3072u);

  EXPECT_EQ(t.findHistogram("spill.records"), nullptr);
  EXPECT_EQ(t.span_count, 3u);
}

TEST(TelemetryFromSpansTest, HistogramsAreSortedByName) {
  TraceRecorder recorder;
  { ScopedSpan s(&recorder, "zeta", "test"); }
  { ScopedSpan s(&recorder, "alpha", "test"); }
  const JobTelemetry t = telemetryFromSpans(recorder.snapshot());
  ASSERT_EQ(t.histograms.size(), 2u);
  EXPECT_EQ(t.histograms[0].name, "alpha_us");
  EXPECT_EQ(t.histograms[1].name, "zeta_us");
}

TEST(TelemetryTest, WriteJsonParses) {
  TraceRecorder recorder;
  {
    ScopedSpan s(&recorder, "merge_pass", "merge");
    s.arg("materialized_bytes", 2048);
  }
  JobTelemetry t = telemetryFromSpans(recorder.snapshot());
  t.counters["MAP_OUTPUT_RECORDS"] = 30;
  t.gauges["threads"] = 4;

  std::ostringstream os;
  JsonWriter w(os);
  t.writeJson(w);
  const JsonValue v = JsonParser::parse(os.str());
  EXPECT_EQ(v.at("span_count").number, 1.0);
  EXPECT_EQ(v.at("counters").at("MAP_OUTPUT_RECORDS").number, 30.0);
  EXPECT_EQ(v.at("gauges").at("threads").number, 4.0);
  ASSERT_EQ(v.at("histograms").array.size(), 2u);  // merge_pass_us + .materialized_bytes
}

}  // namespace
}  // namespace scishuffle::obs
