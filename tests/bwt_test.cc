#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "compress/bwt.h"
#include "testing_support.h"

namespace scishuffle::bwt {
namespace {

std::vector<i32> naiveSuffixArray(ByteSpan text) {
  std::vector<i32> sa(text.size());
  for (std::size_t i = 0; i < sa.size(); ++i) sa[i] = static_cast<i32>(i);
  std::sort(sa.begin(), sa.end(), [&](i32 a, i32 b) {
    const std::size_t ua = static_cast<std::size_t>(a);
    const std::size_t ub = static_cast<std::size_t>(b);
    return std::lexicographical_compare(text.begin() + ua, text.end(), text.begin() + ub,
                                        text.end());
  });
  return sa;
}

Bytes fromString(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

TEST(SuffixArrayTest, ClassicBanana) {
  const Bytes text = fromString("banana");
  EXPECT_EQ(suffixArray(text), naiveSuffixArray(text));
}

TEST(SuffixArrayTest, Mississippi) {
  const Bytes text = fromString("mississippi");
  EXPECT_EQ(suffixArray(text), naiveSuffixArray(text));
}

TEST(SuffixArrayTest, EdgeCases) {
  EXPECT_TRUE(suffixArray(Bytes{}).empty());
  EXPECT_EQ(suffixArray(Bytes{7}), (std::vector<i32>{0}));
  const Bytes same(50, 9);
  EXPECT_EQ(suffixArray(same), naiveSuffixArray(same));
}

class SuffixArrayProperty : public ::testing::TestWithParam<u32> {};

TEST_P(SuffixArrayProperty, MatchesNaive) {
  const u32 seed = GetParam();
  // Mix of alphabet sizes: tiny alphabets exercise deep SA-IS recursion.
  Bytes text = testing::randomBytes(500 + seed * 37, seed);
  for (auto& b : text) b = static_cast<u8>(b % (seed % 3 == 0 ? 2 : (seed % 3 == 1 ? 4 : 256)));
  EXPECT_EQ(suffixArray(text), naiveSuffixArray(text)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixArrayProperty, ::testing::Range(0u, 24u));

TEST(BwtTest, KnownTransformShape) {
  // BWT groups equal characters: "banana" -> last column is a permutation
  // with the n's and a's clustered.
  const Bytes text = fromString("banana");
  const auto t = forward(text);
  Bytes sorted = t.lastColumn;
  std::sort(sorted.begin(), sorted.end());
  Bytes expected = text;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
  EXPECT_EQ(inverse(t.lastColumn, t.primaryIndex), text);
}

class BwtProperty : public ::testing::TestWithParam<u32> {};

TEST_P(BwtProperty, RoundTrips) {
  const u32 seed = GetParam();
  for (const std::size_t n : {0u, 1u, 2u, 100u, 4096u}) {
    const Bytes data = testing::randomBytes(n + seed, seed);
    const auto t = forward(data);
    EXPECT_EQ(t.lastColumn.size(), data.size());
    EXPECT_EQ(inverse(t.lastColumn, t.primaryIndex), data);

    const Bytes runny = testing::runnyBytes(n + seed, seed + 1000);
    const auto t2 = forward(runny);
    EXPECT_EQ(inverse(t2.lastColumn, t2.primaryIndex), runny);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BwtProperty, ::testing::Range(0u, 8u));

TEST(BwtTest, GridWalkRoundTrips) {
  const Bytes data = testing::gridWalkTriples(16, 16, 16);
  const auto t = forward(data);
  EXPECT_EQ(inverse(t.lastColumn, t.primaryIndex), data);
}

TEST(BwtTest, CorruptPrimaryIndexThrows) {
  const Bytes data = fromString("hello world");
  const auto t = forward(data);
  EXPECT_THROW(inverse(t.lastColumn, static_cast<u32>(t.lastColumn.size()) + 5), FormatError);
}

}  // namespace
}  // namespace scishuffle::bwt
