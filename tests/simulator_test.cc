#include <gtest/gtest.h>

#include "cluster/simulator.h"

namespace scishuffle::cluster {
namespace {

ClusterSpec unitSpec(int nodes, int mapSlots, int reduceSlots) {
  ClusterSpec spec;
  spec.nodes = nodes;
  spec.map_slots = mapSlots;
  spec.reduce_slots = reduceSlots;
  spec.disk_mb_per_s = 100;  // 1e8 B/s
  spec.net_mb_per_s = 100;
  return spec;
}

SimJob::MapTask mapTask(double cpu, std::vector<u64> segments) {
  SimJob::MapTask t;
  t.cpu_s = cpu;
  t.segment_bytes = std::move(segments);
  return t;
}

TEST(SimulatorTest, SingleTaskHandComputable) {
  // 1 node, 1 slot: cpu 2s + write 1e8 B at 1e8 B/s = 1s -> map done at 3s.
  // Shuffle same-node: disk read 1s + disk write 1s -> lands at 5s.
  // Reduce: no merge, cpu 1s, output 1e8 B write 1s -> total 7s.
  SimJob job;
  job.maps.push_back(mapTask(2.0, {100'000'000}));
  job.reduces.push_back({1.0, 0, 100'000'000});
  const auto outcome = EventSimulator(unitSpec(1, 1, 1)).run(job);
  EXPECT_NEAR(outcome.map_phase_done_s, 3.0, 1e-9);
  EXPECT_NEAR(outcome.shuffle_done_s, 5.0, 1e-9);
  EXPECT_NEAR(outcome.total_s, 7.0, 1e-9);
}

TEST(SimulatorTest, WavesFormWhenTasksExceedSlots) {
  // 4 identical CPU-only tasks on 2 slots: two waves.
  SimJob job;
  for (int i = 0; i < 4; ++i) job.maps.push_back(mapTask(1.0, {0}));
  job.reduces.push_back({0.0, 0, 0});
  const auto outcome = EventSimulator(unitSpec(1, 2, 1)).run(job);
  EXPECT_NEAR(outcome.map_phase_done_s, 2.0, 1e-9);
}

TEST(SimulatorTest, MoreSlotsNeverSlower) {
  SimJob job;
  for (int i = 0; i < 13; ++i) {
    job.maps.push_back(mapTask(0.5 + 0.1 * i, {1'000'000, 2'000'000}));
  }
  job.reduces.push_back({1.0, 500'000, 1'000'000});
  job.reduces.push_back({2.0, 0, 2'000'000});
  double prev = 1e100;
  for (const int slots : {1, 2, 4, 8}) {
    const auto outcome = EventSimulator(unitSpec(2, slots, 2)).run(job);
    EXPECT_LE(outcome.total_s, prev + 1e-9) << slots << " slots";
    prev = outcome.total_s;
  }
}

TEST(SimulatorTest, CrossNodeTrafficUsesNics) {
  // Mapper on node 0 (slot 0), reducer 1 on node 1: the transfer must pay
  // NIC time; a same-node transfer must not.
  SimJob job;
  job.maps.push_back(mapTask(0.0, {0, 100'000'000}));  // everything to reducer 1
  job.reduces.push_back({0.0, 0, 0});
  job.reduces.push_back({0.0, 0, 0});
  const auto cross = EventSimulator(unitSpec(2, 1, 2)).run(job);

  SimJob local = job;
  local.maps[0].segment_bytes = {100'000'000, 0};  // reducer 0 is on node 0
  const auto same = EventSimulator(unitSpec(2, 1, 2)).run(local);
  EXPECT_GT(cross.total_s, same.total_s);
  // Cross-node pays exactly 2 NIC legs (src + dst) of 1s each.
  EXPECT_NEAR(cross.total_s - same.total_s, 2.0, 1e-9);
}

TEST(SimulatorTest, ShuffleOverlapsMapPhase) {
  // Two map waves; the first wave's segments should be in flight while the
  // second wave computes, so the job beats the closed-form serial estimate.
  SimJob job;
  for (int i = 0; i < 8; ++i) job.maps.push_back(mapTask(2.0, {50'000'000}));
  job.reduces.push_back({0.0, 0, 0});
  const ClusterSpec spec = unitSpec(4, 4, 1);
  const auto outcome = EventSimulator(spec).run(job);

  // Serial lower bound on the same numbers: all map cpu+writes, then all
  // shuffle, then reduce.
  const double serial = 2.0 * 2.0 /* waves */ + 8 * 0.5 / 4 /* writes */ + 8 * 1.0 /* shuffle */;
  EXPECT_LT(outcome.total_s, serial);
}

TEST(SimulatorTest, MergeBytesCostTwoDiskPasses) {
  SimJob job;
  job.maps.push_back(mapTask(0.0, {0}));
  job.reduces.push_back({0.0, 100'000'000, 0});  // 2s of merge I/O
  const auto with = EventSimulator(unitSpec(1, 1, 1)).run(job);
  job.reduces[0].merge_bytes = 0;
  const auto without = EventSimulator(unitSpec(1, 1, 1)).run(job);
  EXPECT_NEAR(with.total_s - without.total_s, 2.0, 1e-9);
}

TEST(SimulatorTest, LocalitySchedulingReducesRemoteReads) {
  // 8 input blocks, every replica on node 0, 2 slots per node on 4 nodes.
  // Locality-aware scheduling should route everything to node 0's slots.
  ClusterSpec spec = unitSpec(4, 8, 1);
  SimJob job;
  for (int b = 0; b < 8; ++b) {
    SimJob::MapTask t;
    t.input_bytes = 100'000'000;  // 1s local read; remote is 3 resource legs
    t.preferred_nodes = {0};
    t.cpu_s = 0.1;
    t.segment_bytes = {0};
    job.maps.push_back(std::move(t));
  }
  job.reduces.push_back({0.0, 0, 0});

  job.honor_locality = true;
  const auto local = EventSimulator(spec).run(job);
  job.honor_locality = false;
  const auto remote = EventSimulator(spec).run(job);

  EXPECT_GT(local.local_input_bytes, remote.local_input_bytes);
  EXPECT_LT(local.remote_input_bytes, remote.remote_input_bytes);
  // All traffic accounted either way.
  EXPECT_EQ(local.local_input_bytes + local.remote_input_bytes, 8u * 100'000'000u);
  EXPECT_EQ(remote.local_input_bytes + remote.remote_input_bytes, 8u * 100'000'000u);
}

TEST(SimulatorTest, SimJobFromResultScales) {
  hadoop::JobResult result;
  result.map_tasks.push_back({2'000'000, {100, 200}});
  result.reduce_tasks.push_back({1'000'000, 300, 50, 75});
  ClusterSpec spec;
  spec.cpu_scale = 2.0;
  const SimJob job = simJobFromResult(result, spec, 10.0);
  ASSERT_EQ(job.maps.size(), 1u);
  EXPECT_NEAR(job.maps[0].cpu_s, 2.0 * 10.0 * 2.0, 1e-9);
  EXPECT_EQ(job.maps[0].segment_bytes, (std::vector<u64>{1000, 2000}));
  EXPECT_NEAR(job.reduces[0].cpu_s, 1.0 * 10.0 * 2.0, 1e-9);
  EXPECT_EQ(job.reduces[0].merge_bytes, 500u);
  EXPECT_EQ(job.reduces[0].output_bytes, 750u);
}

TEST(SimulatorTest, EmptyJob) {
  const auto outcome = EventSimulator(unitSpec(2, 2, 2)).run(SimJob{});
  EXPECT_EQ(outcome.total_s, 0.0);
}

}  // namespace
}  // namespace scishuffle::cluster
