// Randomized soak (ctest label: stress): 200 word-count jobs across random
// codec x pipeline x fault-plan combinations, each asserting bit-identical
// output against a no-fault serial baseline. Every job derives from
// SCISHUFFLE_PROP_SEED, so a failure replays exactly.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "hadoop/runtime.h"
#include "io/primitives.h"
#include "io/streams.h"
#include "testing/fault_injector.h"
#include "testing_support.h"

namespace scishuffle::hadoop {
namespace {

using scishuffle::testing::FaultKind;
using scishuffle::testing::FaultPlan;
using scishuffle::testing::FaultRule;
namespace site = scishuffle::testing::site;

Bytes toBytes(const std::string& s) {
  return Bytes(reinterpret_cast<const u8*>(s.data()),
               reinterpret_cast<const u8*>(s.data()) + s.size());
}

Bytes encodeI64(i64 v) {
  Bytes out;
  MemorySink sink(out);
  writeI64(sink, v);
  return out;
}

i64 decodeI64(const Bytes& b) {
  MemorySource src(b);
  return readI64(src);
}

/// A corpus plus the fixed job shape that must match between baseline and
/// faulted runs for outputs to be comparable byte for byte.
struct Workload {
  std::vector<std::vector<std::string>> docs;
  int num_reducers = 1;
  std::size_t spill_buffer = 16u << 20;
};

Workload makeWorkload(std::mt19937_64& rng) {
  const std::vector<std::string> vocab = {"the",  "windspeed", "grid", "key",   "value",
                                          "map",  "reduce",    "sci",  "curve", "shuffle"};
  Workload w;
  w.num_reducers = 1 + static_cast<int>(rng() % 4);
  if (rng() % 3 == 0) w.spill_buffer = 512;  // force several spills per task
  const int maps = 2 + static_cast<int>(rng() % 3);
  const int words = 40 + static_cast<int>(rng() % 80);
  w.docs.resize(static_cast<std::size_t>(maps));
  for (auto& doc : w.docs) {
    doc.reserve(static_cast<std::size_t>(words));
    for (int i = 0; i < words; ++i) doc.push_back(vocab[rng() % vocab.size()]);
  }
  return w;
}

JobResult runWordCount(const Workload& w, JobConfig config) {
  config.num_reducers = w.num_reducers;
  config.spill_buffer_bytes = w.spill_buffer;
  config.codec_threads = 2;  // keep 200 pool spin-ups cheap
  config.map_slots = 2;
  config.reduce_slots = 2;
  std::vector<MapTask> tasks;
  for (const auto& doc : w.docs) {
    tasks.push_back(MapTask{[&doc](const EmitFn& emit) {
      for (const auto& word : doc) emit(toBytes(word), encodeI64(1));
    }});
  }
  const ReduceFn reduce = [](const Bytes& key, std::vector<Bytes>& values, const EmitFn& emit) {
    i64 sum = 0;
    for (const auto& v : values) sum += decodeI64(v);
    emit(key, encodeI64(sum));
  };
  return runJob(config, tasks, reduce);
}

/// Random plan over the pipelined path's injection sites. Trigger counts stay
/// below the retry budget so every job is recoverable by construction.
FaultPlan randomPlan(std::mt19937_64& rng) {
  FaultPlan plan;
  plan.seed = rng();
  const int rules = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < rules; ++i) {
    FaultRule rule;
    switch (rng() % 6) {
      case 0:
        rule = {site::kShuffleFetch, FaultKind::kThrowIo};
        break;
      case 1:
        rule = {site::kShuffleFetch, FaultKind::kCorruptBytes};
        break;
      case 2:
        rule = {site::kShuffleFetch, FaultKind::kTruncate};
        break;
      case 3:
        rule = {site::kShufflePublish, FaultKind::kThrowIo};
        break;
      case 4:
        rule = {site::kBlockDecode, FaultKind::kCorruptBytes};
        break;
      default:
        rule = {site::kShuffleFetch, FaultKind::kDelay};
        rule.delay_us = 200;
        break;
    }
    rule.max_triggers = 1 + rng() % 2;
    rule.skip_calls = rng() % 3;
    plan.rules.push_back(rule);
  }
  return plan;
}

TEST(StressShuffleTest, TwoHundredRandomizedJobsMatchSerialBaseline) {
  const u64 seed = scishuffle::testing::propertySeed();
  std::mt19937_64 rng(seed);
  const std::vector<std::string> codecs = {"null", "gzipish", "bzip2ish", "transform+gzipish"};

  // A handful of workloads, each with one serial no-fault baseline, reused
  // across the soak so 200 jobs cost ~208 runs.
  constexpr int kWorkloads = 8;
  std::vector<Workload> workloads;
  std::vector<std::map<std::string, JobResult>> baselines(kWorkloads);
  for (int i = 0; i < kWorkloads; ++i) workloads.push_back(makeWorkload(rng));

  for (int job = 0; job < 200; ++job) {
    const int w = static_cast<int>(rng() % kWorkloads);
    const std::string codec = codecs[rng() % codecs.size()];
    const bool pipelined = rng() % 2 == 0;

    auto& baselineSlot = baselines[static_cast<std::size_t>(w)];
    if (baselineSlot.find(codec) == baselineSlot.end()) {
      JobConfig serial;
      serial.shuffle_pipeline = false;
      serial.intermediate_codec = codec;
      baselineSlot.emplace(codec, runWordCount(workloads[static_cast<std::size_t>(w)], serial));
    }
    const JobResult& baseline = baselineSlot.at(codec);

    JobConfig config;
    config.shuffle_pipeline = pipelined;
    config.intermediate_codec = codec;
    config.max_task_attempts = 3;
    config.shuffle_retry.enabled = true;
    config.shuffle_retry.max_attempts = 4;
    config.shuffle_retry.base_backoff_us = 10;
    config.shuffle_retry.max_backoff_us = 500;
    config.shuffle_retry.seed = rng();

    // Fault sites only exist on the pipelined data path; serial jobs soak
    // the codec/pipeline matrix without injection.
    std::optional<scishuffle::testing::FaultInjector> faults;
    if (pipelined) {
      faults.emplace(randomPlan(rng));
      config.fault_injector = &*faults;
    }

    const JobResult result = runWordCount(workloads[static_cast<std::size_t>(w)], config);
    ASSERT_EQ(result.outputs, baseline.outputs)
        << "job " << job << " (codec " << codec << ", pipelined " << pipelined
        << ", workload " << w << ", seed " << seed << ") diverged from the serial baseline;"
        << " replay with SCISHUFFLE_PROP_SEED=" << seed;
  }
}

}  // namespace
}  // namespace scishuffle::hadoop
