// Tests for tools/lint: each seeded-violation fixture under
// tools/lint/testdata must make exactly its check fail with a diagnostic
// carrying file and line, and the real repo must pass every check (which is
// also what the `lint.repo` ctest entry enforces at CI time).
#include <gtest/gtest.h>

#include <sstream>

#include "lint.h"

namespace lint = scishuffle::lint;

namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(LINT_TESTDATA_DIR) / name;
}

testing::AssertionResult hasDiagnostic(const std::vector<lint::Diagnostic>& diags,
                                       const std::string& fileSuffix,
                                       const std::string& messagePiece) {
  for (const auto& d : diags) {
    if (d.file.size() >= fileSuffix.size() &&
        d.file.compare(d.file.size() - fileSuffix.size(), fileSuffix.size(), fileSuffix) == 0 &&
        d.message.find(messagePiece) != std::string::npos) {
      if (d.line <= 0) {
        return testing::AssertionFailure()
               << "diagnostic for " << fileSuffix << " has no line number: "
               << lint::formatDiagnostic(d);
      }
      return testing::AssertionSuccess();
    }
  }
  std::ostringstream os;
  for (const auto& d : diags) os << "  " << lint::formatDiagnostic(d) << "\n";
  return testing::AssertionFailure() << "no diagnostic matching file=*" << fileSuffix
                                     << " message~\"" << messagePiece << "\" in:\n"
                                     << os.str();
}

TEST(LintCounters, MissingDocMappingIsReportedWithFileAndLine) {
  const auto diags = lint::checkCounters(fixture("missing_counter"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/counters.h", "GHOST_RECORDS"));
  EXPECT_TRUE(hasDiagnostic(diags, "counters.h", "not documented in docs/OBSERVABILITY.md"));
  EXPECT_EQ(diags[0].line, 6);  // the kGhostRecords declaration line
}

TEST(LintCounters, DuplicateReportNameIsReported) {
  const auto diags = lint::checkCounters(fixture("duplicate_counter"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "counters.h", "mapped by both kMapOutputRecords"));
}

TEST(LintFormats, StaleDocVersionIsReportedAgainstTheDoc) {
  const auto diags = lint::checkFormats(fixture("stale_version"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "docs/FORMATS.md", "u8(version=2)"));
  EXPECT_TRUE(hasDiagnostic(diags, "docs/FORMATS.md", "u8(version=3)"));  // the expected value
}

TEST(LintSpans, UndocumentedSpanNameIsReported) {
  const auto diags = lint::checkSpans(fixture("undocumented_span"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/foo.cc", "mystery_span"));
  EXPECT_EQ(diags[0].line, 4);
}

TEST(LintFaultSites, UndocumentedSiteIsReported) {
  const auto diags = lint::checkFaultSites(fixture("undocumented_site"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/testing/fault_injector.h", "shadow.site"));
}

TEST(LintFaultSites, UndocumentedTransportSiteIsReported) {
  // The violation lives in src/net/socket.h, not the core injector header —
  // the linter must scan both against docs/FAULTS.md.
  const auto diags = lint::checkFaultSites(fixture("undocumented_net_site"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/net/socket.h", "net.shadow"));
  EXPECT_TRUE(hasDiagnostic(diags, "socket.h", "not documented in docs/FAULTS.md"));
}

TEST(LintFaultSites, TreeWithoutTransportLayerStillLints) {
  // undocumented_site has no src/net/: the transport scan must skip quietly,
  // reporting only the seeded core-injector violation.
  const auto diags = lint::checkFaultSites(fixture("undocumented_site"));
  for (const auto& d : diags) {
    EXPECT_EQ(d.file.find("net/socket.h"), std::string::npos) << lint::formatDiagnostic(d);
  }
}

TEST(LintSimdKernels, UndocumentedKernelIsReported) {
  const auto diags = lint::checkSimdKernels(fixture("undocumented_kernel"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/io/simd.h", "byteShuffle"));
  EXPECT_TRUE(hasDiagnostic(diags, "simd.h", "not documented in docs/PERFORMANCE.md"));
  EXPECT_EQ(diags[0].line, 17);  // the SCISHUFFLE_SIMD_KERNEL(byteShuffle, ...) line
}

TEST(LintSimdKernels, MissingScalarReferenceIsReported) {
  const auto diags = lint::checkSimdKernels(fixture("dangling_scalar"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/io/simd.h", "byteSumReference"));
  EXPECT_TRUE(hasDiagnostic(diags, "simd.h", "does not appear elsewhere in this file"));
}

TEST(LintGauges, UndocumentedGaugeIsReportedWithFileAndLine) {
  const auto diags = lint::checkGauges(fixture("undocumented_gauge"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "src/obs/sampler.h", "shadow.bytes"));
  EXPECT_TRUE(hasDiagnostic(diags, "sampler.h", "not documented in docs/OBSERVABILITY.md"));
  EXPECT_EQ(diags[0].line, 6);  // the kShadowBytes declaration line
}

TEST(LintGauges, DuplicateWireNameIsReported) {
  const auto diags = lint::checkGauges(fixture("duplicate_gauge"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(hasDiagnostic(diags, "sampler.h", "mapped by both kProcessRssBytes"));
}

TEST(LintSync, RawPrimitiveOutsideAnnotationsIsReported) {
  const auto diags = lint::checkSyncPrimitives(fixture("raw_sync_primitive"));
  ASSERT_EQ(diags.size(), 2u);  // the std::mutex decl and the std::lock_guard use
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/bad_sync.cc", "std::mutex"));
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/bad_sync.cc", "std::lock_guard"));
  EXPECT_TRUE(hasDiagnostic(diags, "bad_sync.cc", "io/annotations.h"));
}

TEST(LintSync, UnrankedMutexAndUndocumentedLevelAreReported) {
  const auto diags = lint::checkLockHierarchy(fixture("unregistered_mutex"));
  ASSERT_EQ(diags.size(), 2u);
  // kGhost is declared in the hierarchy header but missing from the doc.
  EXPECT_TRUE(hasDiagnostic(diags, "src/io/lock_order.h", "test.ghost"));
  EXPECT_TRUE(hasDiagnostic(diags, "lock_order.h", "docs/LOCK_ORDER.md"));
  // naked_ declares no lock_rank:: level at all.
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/state.h", "naked_"));
}

TEST(LintSync, UnguardedCondVarWaitIsReported) {
  const auto diags = lint::checkCondVarWaits(fixture("unguarded_cond_wait"));
  ASSERT_EQ(diags.size(), 1u);  // goodWait/goodPoll must not be flagged
  EXPECT_TRUE(hasDiagnostic(diags, "src/hadoop/waiter.cc", "ready_"));
  EXPECT_EQ(diags[0].line, 10);  // the bare ready_.wait(lock) in badWait()
}

TEST(LintMissingInputs, AbsentFilesProduceDiagnosticsNotCrashes) {
  const auto root = fixture("does_not_exist");
  EXPECT_FALSE(lint::checkCounters(root).empty());
  EXPECT_FALSE(lint::checkFormats(root).empty());
  EXPECT_FALSE(lint::checkSpans(root).empty());
  EXPECT_FALSE(lint::checkFaultSites(root).empty());
  EXPECT_FALSE(lint::checkSimdKernels(root).empty());
  EXPECT_FALSE(lint::checkGauges(root).empty());
  EXPECT_FALSE(lint::checkLockHierarchy(root).empty());
}

// The real tree must hold every invariant — the same gate `lint.repo` runs.
TEST(LintRepo, RealRepositoryIsClean) {
  std::ostringstream os;
  const int violations = lint::runAllChecks(SCISHUFFLE_REPO_ROOT, os);
  EXPECT_EQ(violations, 0) << os.str();
}

}  // namespace
