// Unit tests for the deterministic fault injector: trigger controls
// (skip_calls / max_triggers / probability), the hit/mutate phase split,
// seed determinism, and the MiniDfs wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "dfs/mini_dfs.h"
#include "io/common.h"
#include "testing/fault_injector.h"
#include "testing_support.h"

namespace scishuffle::testing {
namespace {

FaultPlan onePlan(FaultRule rule, u64 seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rules.push_back(std::move(rule));
  return plan;
}

TEST(FaultInjectorTest, ThrowIoFiresOnceThenDisarms) {
  FaultInjector faults(onePlan({site::kShuffleFetch, FaultKind::kThrowIo}));
  EXPECT_THROW(faults.hit(site::kShuffleFetch), IoError);
  // max_triggers defaults to 1: subsequent calls pass.
  faults.hit(site::kShuffleFetch);
  faults.hit(site::kShuffleFetch);
  EXPECT_EQ(faults.triggered(site::kShuffleFetch), 1u);
  EXPECT_EQ(faults.totalTriggered(), 1u);
}

TEST(FaultInjectorTest, SiteMismatchNeverFires) {
  FaultInjector faults(onePlan({site::kShuffleFetch, FaultKind::kThrowIo}));
  faults.hit(site::kDfsRead);
  faults.hit(site::kShufflePublish);
  Bytes buf{1, 2, 3};
  faults.mutate(site::kDfsRead, buf);
  EXPECT_EQ(buf, (Bytes{1, 2, 3}));
  EXPECT_EQ(faults.totalTriggered(), 0u);
}

TEST(FaultInjectorTest, SkipCallsDelaysEligibility) {
  FaultRule rule{site::kDfsRead, FaultKind::kThrowIo};
  rule.skip_calls = 2;
  FaultInjector faults(onePlan(rule));
  faults.hit(site::kDfsRead);  // call 1: skipped
  faults.hit(site::kDfsRead);  // call 2: skipped
  EXPECT_EQ(faults.triggered(site::kDfsRead), 0u);
  EXPECT_THROW(faults.hit(site::kDfsRead), IoError);  // call 3 fires
  EXPECT_EQ(faults.triggered(site::kDfsRead), 1u);
}

TEST(FaultInjectorTest, MaxTriggersBoundsFiring) {
  FaultRule rule{site::kDfsRead, FaultKind::kThrowIo};
  rule.max_triggers = 3;
  FaultInjector faults(onePlan(rule));
  for (int i = 0; i < 3; ++i) EXPECT_THROW(faults.hit(site::kDfsRead), IoError);
  for (int i = 0; i < 10; ++i) faults.hit(site::kDfsRead);  // disarmed
  EXPECT_EQ(faults.triggered(site::kDfsRead), 3u);
}

TEST(FaultInjectorTest, ZeroMaxTriggersMeansUnlimited) {
  FaultRule rule{site::kDfsRead, FaultKind::kThrowIo};
  rule.max_triggers = 0;
  FaultInjector faults(onePlan(rule));
  for (int i = 0; i < 25; ++i) EXPECT_THROW(faults.hit(site::kDfsRead), IoError);
  EXPECT_EQ(faults.triggered(site::kDfsRead), 25u);
}

TEST(FaultInjectorTest, ProbabilityIsSeedDeterministic) {
  FaultRule rule{site::kDfsRead, FaultKind::kThrowIo};
  rule.probability = 0.5;
  rule.max_triggers = 0;

  auto firingPattern = [&](u64 seed) {
    FaultInjector faults(onePlan(rule, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        faults.hit(site::kDfsRead);
        fired.push_back(false);
      } catch (const IoError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };

  const auto a = firingPattern(42);
  const auto b = firingPattern(42);
  EXPECT_EQ(a, b) << "same seed must replay the same trigger sequence";

  // And the coin is actually being flipped: with p=0.5 over 64 calls, both
  // outcomes must appear (probability of this failing is 2^-63).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultInjectorTest, CorruptBytesFlipsExactlyOneBit) {
  FaultRule rule{site::kBlockDecode, FaultKind::kCorruptBytes};
  FaultInjector faults(onePlan(rule));
  const Bytes original = randomBytes(512, 9);
  Bytes buf = original;
  faults.mutate(site::kBlockDecode, buf);
  ASSERT_EQ(buf.size(), original.size());
  int diffBits = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    diffBits += __builtin_popcount(static_cast<unsigned>(buf[i] ^ original[i]));
  }
  EXPECT_EQ(diffBits, 1);
  EXPECT_EQ(faults.triggered(site::kBlockDecode), 1u);
}

TEST(FaultInjectorTest, TruncateShortensBuffer) {
  FaultRule rule{site::kShuffleFetch, FaultKind::kTruncate};
  FaultInjector faults(onePlan(rule));
  const Bytes original = randomBytes(512, 10);
  Bytes buf = original;
  faults.mutate(site::kShuffleFetch, buf);
  ASSERT_LT(buf.size(), original.size());
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), original.begin()));
}

TEST(FaultInjectorTest, MutateSkipsEmptyBuffers) {
  FaultRule rule{site::kShuffleFetch, FaultKind::kCorruptBytes};
  FaultInjector faults(onePlan(rule));
  Bytes empty;
  faults.mutate(site::kShuffleFetch, empty);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(faults.totalTriggered(), 0u);
}

TEST(FaultInjectorTest, PhasesAreDisjoint) {
  // A corrupt rule must never fire in the hit phase and a throw rule must
  // never fire in the mutate phase — otherwise a rule double-counts.
  FaultPlan plan;
  plan.rules.push_back({site::kShuffleFetch, FaultKind::kCorruptBytes});
  FaultRule throwRule{site::kShuffleFetch, FaultKind::kThrowIo};
  throwRule.skip_calls = 100;  // keep it armed but quiet
  plan.rules.push_back(throwRule);
  FaultInjector faults(plan);

  faults.hit(site::kShuffleFetch);  // corrupt rule must not fire here
  EXPECT_EQ(faults.totalTriggered(), 0u);

  Bytes buf = randomBytes(64, 11);
  const Bytes before = buf;
  faults.mutate(site::kShuffleFetch, buf);  // corrupt fires, throw does not
  EXPECT_NE(buf, before);
  EXPECT_EQ(faults.totalTriggered(), 1u);
}

TEST(FaultInjectorTest, DelayDoesNotThrow) {
  FaultRule rule{site::kShufflePublish, FaultKind::kDelay};
  rule.delay_us = 100;
  FaultInjector faults(onePlan(rule));
  EXPECT_NO_THROW(faults.hit(site::kShufflePublish));
  EXPECT_EQ(faults.triggered(site::kShufflePublish), 1u);
}

TEST(FaultInjectorTest, ThreadSafeUnderConcurrentHits) {
  FaultRule rule{site::kShuffleFetch, FaultKind::kThrowIo};
  rule.max_triggers = 8;
  FaultInjector faults(onePlan(rule));
  std::vector<std::thread> threads;
  std::atomic<int> thrown{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          faults.hit(site::kShuffleFetch);
        } catch (const IoError&) {
          thrown.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(thrown.load(), 8);
  EXPECT_EQ(faults.triggered(site::kShuffleFetch), 8u);
}

TEST(MiniDfsFaultTest, ReadFaultLeavesStoredBlocksPristine) {
  dfs::DfsConfig config;
  config.block_size = 64;
  dfs::MiniDfs fs(config);
  const Bytes data = randomBytes(300, 12);
  fs.writeFile("/data/in", data);

  FaultInjector faults(onePlan({site::kDfsRead, FaultKind::kCorruptBytes}));
  fs.setFaultInjector(&faults);
  const Bytes corrupted = fs.readFile("/data/in");
  EXPECT_NE(corrupted, data);
  EXPECT_EQ(faults.triggered(site::kDfsRead), 1u);

  // The fault models a bad transfer, not disk rot: the next read (rule now
  // disarmed) returns the original bytes.
  EXPECT_EQ(fs.readFile("/data/in"), data);
}

TEST(MiniDfsFaultTest, WriteFaultPreventsFileCreation) {
  dfs::MiniDfs fs(dfs::DfsConfig{});
  FaultInjector faults(onePlan({site::kDfsWrite, FaultKind::kThrowIo}));
  fs.setFaultInjector(&faults);
  const Bytes data = randomBytes(100, 13);
  EXPECT_THROW(fs.writeFile("/data/out", data), IoError);
  EXPECT_FALSE(fs.exists("/data/out"));
  // Retry (rule disarmed) succeeds cleanly — the failed write left no state.
  fs.writeFile("/data/out", data);
  EXPECT_EQ(fs.readFile("/data/out"), data);
}

TEST(MiniDfsFaultTest, BlockReadFaultIsPerCopy) {
  dfs::DfsConfig config;
  config.block_size = 64;
  dfs::MiniDfs fs(config);
  const Bytes data = randomBytes(200, 14);
  fs.writeFile("/data/in", data);

  FaultInjector faults(onePlan({site::kDfsRead, FaultKind::kTruncate}));
  fs.setFaultInjector(&faults);
  const Bytes bad = fs.readBlock("/data/in", 0, 0);
  EXPECT_LT(bad.size(), 64u);
  const Bytes good = fs.readBlock("/data/in", 0, 0);
  EXPECT_EQ(good.size(), 64u);
}

}  // namespace
}  // namespace scishuffle::testing
