// Regression tests for `serve`'s signal handling (service/signals.h): the
// first SIGTERM/SIGINT drains the service, a second escalates to cancelling
// the queue. Exercised the way the serve loop wires it — through the socket
// endpoint — so the test covers the full signal -> self-pipe -> watcher ->
// endpoint/service path, not just the guard in isolation.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/job_service.h"
#include "service/service_socket.h"
#include "service/signals.h"
#include "service/workload.h"

namespace {

using namespace scishuffle;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    char tmpl[] = "/tmp/scishuffle-sig-XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    if (p == nullptr) throw std::runtime_error("mkdtemp failed");
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Spec builder for the endpoint: "wordcount ..." via the shared registry,
/// or "slowcount <ms>" — one map task that sleeps, to hold a runner slot
/// while signals arrive.
bool buildSpec(const std::vector<std::string>& args, service::JobSpec& spec,
               std::string& error) {
  if (!args.empty() && args[0] == "slowcount") {
    const long ms = args.size() > 1 ? std::stol(args[1]) : 200;
    spec.name = "slowcount";
    spec.config.num_reducers = 1;
    spec.map_tasks.push_back(hadoop::MapTask{[ms](const hadoop::EmitFn& emit) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      emit(Bytes{'k'}, Bytes{'v'});
    }});
    spec.reduce = [](const Bytes& key, std::vector<Bytes>& values, const hadoop::EmitFn& emit) {
      emit(key, values.front());
    };
    return true;
  }
  try {
    service::Workload w = service::buildWorkload(args.empty() ? "" : args[0],
                                                 {args.begin() + (args.empty() ? 0 : 1), args.end()});
    spec.name = args[0];
    spec.config = std::move(w.config);
    spec.map_tasks = std::move(w.map_tasks);
    spec.reduce = std::move(w.reduce);
    return true;
  } catch (const std::invalid_argument& e) {
    error = e.what();
    return false;
  }
}

bool waitFor(const std::function<bool()>& pred, int timeoutMs) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(SignalsTest, FirstSignalDrainsEverythingAdmitted) {
  TempDir dir;
  service::ServiceConfig config;
  config.max_concurrent_jobs = 2;
  service::JobService svc(config);
  service::ServiceEndpoint endpoint(svc, dir.path / "svc.sock", buildSpec);
  service::ShutdownSignalGuard guard([&endpoint] { endpoint.requestShutdown(); },
                                     [&svc] { svc.cancelAllQueued(); });

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    const std::string r = service::ServiceEndpoint::request(endpoint.socketPath(),
                                                            "submit normal wordcount 2 100");
    ASSERT_EQ(r.rfind("ok id=", 0), 0u) << r;
    ids.push_back(r.substr(6));
  }

  ASSERT_EQ(std::raise(SIGTERM), 0);
  // The signal path is the only thing that can unblock this wait.
  endpoint.waitUntilShutdownRequested();
  EXPECT_EQ(guard.signalCount(), 1);

  endpoint.stop();
  svc.shutdown(service::JobService::Shutdown::kDrainQueued);
  // Drain semantics: everything admitted before the signal still ran.
  for (const std::string& id : ids) {
    const auto status = svc.status(std::stoull(id));
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, service::JobState::kDone) << "job " << id;
  }
}

TEST(SignalsTest, SecondSignalCancelsTheQueue) {
  TempDir dir;
  service::ServiceConfig config;
  config.max_concurrent_jobs = 1;  // one slot, so later submissions queue up
  service::JobService svc(config);
  service::ServiceEndpoint endpoint(svc, dir.path / "svc.sock", buildSpec);
  service::ShutdownSignalGuard guard([&endpoint] { endpoint.requestShutdown(); },
                                     [&svc] { svc.cancelAllQueued(); });

  const std::string slow = service::ServiceEndpoint::request(endpoint.socketPath(),
                                                             "submit normal slowcount 700");
  ASSERT_EQ(slow.rfind("ok id=", 0), 0u) << slow;
  const std::string slowId = slow.substr(6);
  ASSERT_TRUE(waitFor([&svc] { return svc.runningJobs() == 1; }, 5000))
      << "slow job never started";

  std::vector<std::string> queuedIds;
  for (int i = 0; i < 3; ++i) {
    const std::string r = service::ServiceEndpoint::request(endpoint.socketPath(),
                                                            "submit batch wordcount 2 100");
    ASSERT_EQ(r.rfind("ok id=", 0), 0u) << r;
    queuedIds.push_back(r.substr(6));
  }
  ASSERT_EQ(svc.queuedJobs(), 3u);

  ASSERT_EQ(std::raise(SIGTERM), 0);  // first: request drain
  endpoint.waitUntilShutdownRequested();
  ASSERT_EQ(std::raise(SIGINT), 0);  // second: cancel the queue
  ASSERT_TRUE(waitFor([&svc] { return svc.queuedJobs() == 0; }, 5000))
      << "second signal did not clear the queue";
  EXPECT_EQ(guard.signalCount(), 2);

  // The endpoint is still serving: the cancelled jobs are visible as such
  // over the socket before teardown, exactly what an operator would observe.
  for (const std::string& id : queuedIds) {
    const std::string line =
        service::ServiceEndpoint::request(endpoint.socketPath(), "status " + id);
    EXPECT_NE(line.find("cancelled"), std::string::npos) << line;
  }

  endpoint.stop();
  svc.shutdown(service::JobService::Shutdown::kDrainQueued);
  const auto slowStatus = svc.status(std::stoull(slowId));
  ASSERT_TRUE(slowStatus.has_value());
  EXPECT_EQ(slowStatus->state, service::JobState::kDone)
      << "running job must finish even after queue cancellation";
}

TEST(SignalsTest, ThirdSignalIsIgnoredAndHandlersRestore) {
  {
    int first = 0;
    int second = 0;
    service::ShutdownSignalGuard guard([&first] { ++first; }, [&second] { ++second; });
    ASSERT_EQ(std::raise(SIGINT), 0);
    ASSERT_EQ(std::raise(SIGINT), 0);
    ASSERT_EQ(std::raise(SIGINT), 0);  // saturates: no third callback
    ASSERT_TRUE(waitFor([&guard] { return guard.signalCount() == 2; }, 5000));
    // Give a straggling third delivery a chance to (incorrectly) fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(guard.signalCount(), 2);
  }
  // Guard destroyed: handlers restored, a fresh guard starts from zero.
  int first = 0;
  service::ShutdownSignalGuard fresh([&first] { ++first; }, [] {});
  EXPECT_EQ(fresh.signalCount(), 0);
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(waitFor([&fresh] { return fresh.signalCount() == 1; }, 5000));
  EXPECT_EQ(first, 1);
}

}  // namespace
