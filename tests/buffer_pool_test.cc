// VectorPool: reuse accounting, bounding, Lease RAII, and thread safety of
// the shared free list (the tsan label puts the concurrent test under the
// -DSCISHUFFLE_SANITIZE=thread CI job).
#include "io/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace scishuffle {
namespace {

TEST(VectorPool, RecyclesReleasedCapacity) {
  VectorPool<u8> pool;
  std::vector<u8> v = pool.acquireRaw(1024);
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity(), 1024u);
  v.resize(512, 7);
  const u8* data = v.data();
  pool.release(std::move(v));
  EXPECT_EQ(pool.freeListSize(), 1u);

  std::vector<u8> w = pool.acquireRaw();
  EXPECT_TRUE(w.empty());            // recycled buffers come back cleared
  EXPECT_EQ(w.data(), data);         // same allocation, no malloc
  EXPECT_EQ(pool.freeListSize(), 0u);

  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.returns, 1u);
}

TEST(VectorPool, DropsZeroCapacityAndOversizedEntries) {
  VectorPool<u8> pool(4, 100);
  pool.release(std::vector<u8>{});  // nothing to recycle
  EXPECT_EQ(pool.freeListSize(), 0u);
  std::vector<u8> big(1000);
  pool.release(std::move(big));  // over maxEntryElements
  EXPECT_EQ(pool.freeListSize(), 0u);
  std::vector<u8> ok(50);
  pool.release(std::move(ok));
  EXPECT_EQ(pool.freeListSize(), 1u);
}

TEST(VectorPool, BoundsTheFreeList) {
  VectorPool<u8> pool(2, 1 << 20);
  for (int i = 0; i < 5; ++i) pool.release(std::vector<u8>(64));
  EXPECT_EQ(pool.freeListSize(), 2u);  // excess released to the allocator
}

TEST(VectorPool, LeaseReturnsOnDestruction) {
  VectorPool<u64> pool;
  {
    auto lease = pool.lease(16);
    lease->push_back(42);
    EXPECT_EQ((*lease)[0], 42u);
    EXPECT_EQ(lease.get().size(), 1u);
    EXPECT_EQ(pool.freeListSize(), 0u);
  }
  EXPECT_EQ(pool.freeListSize(), 1u);
  auto again = pool.lease();
  EXPECT_TRUE(again->empty());  // cleared, not carrying the 42
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(VectorPool, SharedBytePoolIsUsable) {
  auto lease = sharedBytePool().lease(128);
  lease->assign(128, 0xAB);
  EXPECT_EQ(lease->size(), 128u);
}

// Under TSan this is the proof that the free list is properly serialized:
// many threads acquire, fill, and release concurrently.
TEST(VectorPool, ConcurrentAcquireRelease) {
  VectorPool<u8> pool(8, 1 << 16);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        auto lease = pool.lease(256);
        lease->assign(256, static_cast<u8>(t));
        // Every byte must be ours: leases are exclusive.
        for (const u8 b : *lease) {
          if (b != static_cast<u8>(t)) std::abort();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, static_cast<u64>(kThreads) * kIters);
  EXPECT_GT(stats.reuses, 0u);
}

}  // namespace
}  // namespace scishuffle
