#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "compress/bzip2ish.h"
#include "compress/codec.h"
#include "compress/deflate.h"
#include "testing_support.h"

namespace scishuffle {
namespace {

std::unique_ptr<Codec> makeCodec(const std::string& name) {
  registerBuiltinCodecs();
  return CodecRegistry::instance().create(name);
}

// (codec name, workload name)
using Case = std::tuple<std::string, std::string>;

Bytes workload(const std::string& which, u32 seed) {
  if (which == "empty") return {};
  if (which == "one") return {42};
  if (which == "random") return testing::randomBytes(50000, seed);
  if (which == "runny") return testing::runnyBytes(80000, seed);
  if (which == "gridwalk") return testing::gridWalkTriples(20, 20, 20);
  if (which == "named") return testing::namedKeyStream("windspeed1", 60, 60, 1.5f);
  throw std::logic_error("unknown workload");
}

class CodecRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(CodecRoundTrip, RoundTrips) {
  const auto& [codecName, workloadName] = GetParam();
  const auto codec = makeCodec(codecName);
  for (u32 seed = 0; seed < 3; ++seed) {
    const Bytes data = workload(workloadName, seed);
    const Bytes compressed = codec->compress(data);
    EXPECT_EQ(codec->decompress(compressed), data) << codecName << "/" << workloadName;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllWorkloads, CodecRoundTrip,
    ::testing::Combine(::testing::Values("null", "gzipish", "bzip2ish"),
                       ::testing::Values("empty", "one", "random", "runny", "gridwalk", "named")),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(CodecTest, CompressibleDataActuallyShrinks) {
  const Bytes grid = testing::gridWalkTriples(25, 25, 25);
  const auto gz = makeCodec("gzipish");
  const auto bz = makeCodec("bzip2ish");
  EXPECT_LT(gz->compress(grid).size(), grid.size() / 2);
  EXPECT_LT(bz->compress(grid).size(), grid.size() / 2);
}

TEST(CodecTest, RandomDataDoesNotExplode) {
  const Bytes random = testing::randomBytes(100000, 5);
  const auto gz = makeCodec("gzipish");
  // Incompressible input may grow slightly but must stay near 1x.
  EXPECT_LT(gz->compress(random).size(), random.size() + random.size() / 8 + 64);
}

TEST(CodecTest, CorruptStreamThrows) {
  const auto gz = makeCodec("gzipish");
  const auto bz = makeCodec("bzip2ish");
  Bytes data = testing::gridWalkTriples(10, 10, 10);
  Bytes cz = gz->compress(data);
  cz[5] ^= 0xFF;  // clobber the size field
  EXPECT_THROW(gz->decompress(cz), FormatError);
  Bytes cb = bz->compress(data);
  cb[cb.size() / 2] ^= 0xFF;
  EXPECT_THROW(bz->decompress(cb), FormatError);
  EXPECT_THROW(gz->decompress(Bytes{1, 2, 3, 4, 5, 6}), FormatError);
}

TEST(CodecTest, MultiBlockBzip2ish) {
  // Force several BWT blocks through a small block size.
  const Bzip2ishCodec codec(1024);
  const Bytes data = testing::runnyBytes(10000, 9);
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(CodecTest, MultiBlockDeflate) {
  // > 64Ki tokens forces multiple deflate blocks.
  const Bytes data = testing::randomBytes(200000, 13);
  const DeflateCodec codec;
  EXPECT_EQ(codec.decompress(codec.compress(data)), data);
}

TEST(CodecTest, CompressionLevelsTradeTimeForSize) {
  const Bytes data = testing::runnyBytes(300000, 21);
  const DeflateCodec fast(1);
  const DeflateCodec best(9);
  const Bytes cFast = fast.compress(data);
  const Bytes cBest = best.compress(data);
  EXPECT_EQ(fast.decompress(cFast), data);
  EXPECT_EQ(best.decompress(cBest), data);
  EXPECT_LE(cBest.size(), cFast.size());
}

TEST(CodecTest, InvalidLevelThrows) {
  EXPECT_THROW(DeflateCodec(0), std::logic_error);
  EXPECT_THROW(DeflateCodec(10), std::logic_error);
}

TEST(CodecTest, Bzip2ishMultiTablePathRoundTrips) {
  // A block with phase changes (zero-heavy region then literal-heavy region)
  // has > 4800 post-MTF symbols, forcing the 6-table selector machinery.
  Bytes data;
  data.insert(data.end(), 200000, 7);  // long runs -> RUNA/RUNB-heavy
  const Bytes noise = testing::randomBytes(200000, 31);
  data.insert(data.end(), noise.begin(), noise.end());
  const Bzip2ishCodec codec;
  const Bytes compressed = codec.compress(data);
  EXPECT_EQ(codec.decompress(compressed), data);
}

TEST(CodecRegistryTest, ListsBuiltins) {
  registerBuiltinCodecs();
  const auto names = CodecRegistry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "gzipish"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bzip2ish"), names.end());
  EXPECT_THROW(CodecRegistry::instance().create("nope"), std::out_of_range);
}

}  // namespace
}  // namespace scishuffle
